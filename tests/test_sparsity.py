"""Unit + property tests for the activation-sparsity substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity import (
    ActivationTrace,
    NeuronLayout,
    TraceConfig,
    compute_share,
    dimm_load_imbalance,
    generate_trace,
    hot_cold_computation_share,
    hot_set_churn,
    jaccard_similarity,
    layer_correlation,
    power_law_exponent,
    power_law_frequencies,
    token_similarity_curve,
)


class TestPowerLawExponent:
    def test_pareto_80_20(self):
        a = power_law_exponent(0.2, 0.8)
        # continuous power law: share = f^(1-a)
        assert 0.2 ** (1 - a) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            power_law_exponent(0.0, 0.8)
        with pytest.raises(ValueError):
            power_law_exponent(0.2, 1.0)
        with pytest.raises(ValueError):
            power_law_exponent(0.5, 0.2)  # mass must concentrate


class TestPowerLawFrequencies:
    def test_mean_is_density(self):
        p = power_law_frequencies(1000, 0.15, shuffle=False)
        assert p.mean() == pytest.approx(0.15, rel=0.02)

    def test_hot_share_is_exact(self):
        p = power_law_frequencies(1000, 0.12, shuffle=False)
        assert compute_share(p, 0.2) == pytest.approx(0.8, abs=0.02)

    def test_monotone_when_unshuffled(self):
        p = power_law_frequencies(500, 0.2, shuffle=False)
        assert (np.diff(p) <= 1e-12).all()

    def test_head_saturates(self):
        p = power_law_frequencies(1000, 0.12, shuffle=False)
        assert p[0] == pytest.approx(0.99)

    def test_shuffle_preserves_multiset(self):
        rng = np.random.default_rng(0)
        a = power_law_frequencies(300, 0.2, shuffle=False)
        b = power_law_frequencies(300, 0.2, rng=rng, shuffle=True)
        assert np.allclose(np.sort(a), np.sort(b))

    def test_bounds_respected(self):
        p = power_law_frequencies(100, 0.3)
        assert (p >= 1e-4).all() and (p <= 0.99).all()

    @given(
        n=st.integers(10, 2000),
        density=st.floats(0.05, 0.5),
        share=st.floats(0.55, 0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_mean_and_share(self, n, density, share):
        """For any feasible configuration: mean ~= density, share within
        the feasible envelope, probabilities in bounds."""
        p = power_law_frequencies(
            n, density, hot_fraction=0.2, hot_share=share, shuffle=False
        )
        assert (p > 0).all() and (p <= 0.99).all()
        assert p.mean() == pytest.approx(density, rel=0.15)
        achieved = compute_share(p, 0.2)
        k = max(1, round(0.2 * n))  # the head size the builder actually uses
        feasible_cap = min(1.0, 0.99 * k / (density * n))
        assert achieved <= feasible_cap + 0.02
        assert achieved >= min(share, feasible_cap) - 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            power_law_frequencies(0, 0.2)
        with pytest.raises(ValueError):
            power_law_frequencies(10, 0.0)
        with pytest.raises(ValueError):
            power_law_frequencies(10, 0.2, p_min=0.5, p_max=0.4)

    def test_compute_share_validation(self):
        with pytest.raises(ValueError):
            compute_share(np.array([]), 0.2)
        with pytest.raises(ValueError):
            compute_share(np.ones(5), 0.0)


class TestLayout:
    def test_group_partition(self, tiny_model):
        layout = NeuronLayout.build(tiny_model, granularity=4)
        assert layout.attn_groups == 64
        assert layout.mlp_groups == 256
        assert layout.groups_per_layer == 320
        assert layout.group_neurons.sum() == tiny_model.neurons_per_layer

    def test_tail_group_partial(self, tiny_model):
        layout = NeuronLayout.build(tiny_model, granularity=48)
        # 256 attn neurons / 48 -> 6 groups, last holds 16
        assert layout.attn_groups == 6
        assert layout.group_neurons[5] == 16

    def test_group_bytes_match_model_totals(self, tiny_model):
        layout = NeuronLayout.build(tiny_model, granularity=4)
        assert (layout.sparse_bytes_per_layer()
                == tiny_model.sparse_bytes_per_layer)

    def test_is_mlp_mask(self, tiny_model):
        layout = NeuronLayout.build(tiny_model, granularity=4)
        assert not layout.is_mlp[:layout.attn_groups].any()
        assert layout.is_mlp[layout.attn_groups:].all()

    def test_bytes_of(self, tiny_model):
        layout = NeuronLayout.build(tiny_model, granularity=4)
        mask = np.zeros(layout.groups_per_layer, dtype=bool)
        mask[0] = True
        assert layout.bytes_of(mask) == layout.group_bytes[0]
        with pytest.raises(ValueError):
            layout.bytes_of(np.zeros(3, dtype=bool))

    def test_slices_cover_layer(self, tiny_model):
        layout = NeuronLayout.build(tiny_model, granularity=4)
        assert layout.attn_slice.stop == layout.mlp_slice.start
        assert layout.mlp_slice.stop == layout.groups_per_layer


class TestTraceConfig:
    def test_defaults_are_paper_shape(self):
        c = TraceConfig()
        assert c.prompt_len == 128 and c.decode_len == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(prompt_len=0)
        with pytest.raises(ValueError):
            TraceConfig(kappa=1.5)
        with pytest.raises(ValueError):
            TraceConfig(density=0.0)
        with pytest.raises(ValueError):
            TraceConfig(granularity=0)


class TestGenerateTrace:
    def test_shapes(self, tiny_trace, tiny_model):
        assert tiny_trace.num_layers == tiny_model.num_layers
        assert tiny_trace.n_tokens == 96
        assert tiny_trace.n_decode_tokens == 64
        for matrix in tiny_trace.layers:
            assert matrix.shape == (96, 320)
            assert matrix.dtype == bool

    def test_deterministic_per_seed(self, tiny_model):
        cfg = TraceConfig(prompt_len=8, decode_len=8, granularity=8)
        a = generate_trace(tiny_model, cfg, seed=3)
        b = generate_trace(tiny_model, cfg, seed=3)
        c = generate_trace(tiny_model, cfg, seed=4)
        assert all(np.array_equal(x, y) for x, y in zip(a.layers, b.layers))
        assert any(
            not np.array_equal(x, y) for x, y in zip(a.layers, c.layers)
        )

    def test_density_close_to_target(self, tiny_trace, tiny_model):
        assert tiny_trace.density() == pytest.approx(
            tiny_model.activation_density, rel=0.25
        )

    def test_parents_recorded_for_inner_layers(self, tiny_trace):
        assert tiny_trace.parents[0] is None
        for l in range(1, tiny_trace.num_layers):
            parents = tiny_trace.parents[l]
            assert parents.shape == (320, 2)
            assert parents.min() >= 0 and parents.max() < 320

    def test_higher_kappa_means_higher_adjacent_similarity(self, tiny_model):
        def adjacent(kappa):
            cfg = TraceConfig(
                prompt_len=8,
                decode_len=48,
                granularity=8,
                kappa=kappa,
                drift_rate=0.0,
                phase_shift=0.0,
            )
            trace = generate_trace(tiny_model, cfg, seed=5)
            return token_similarity_curve(trace, 1)[1]
        assert adjacent(0.98) > adjacent(0.5)

    def test_phase_shift_increases_churn(self, tiny_model):
        def churn(shift):
            cfg = TraceConfig(
                prompt_len=24,
                decode_len=48,
                granularity=8,
                phase_shift=shift,
                drift_rate=0.0,
            )
            return hot_set_churn(generate_trace(tiny_model, cfg, seed=5))
        assert churn(0.5) > churn(0.0)

    def test_gamma_creates_layer_correlation(self, tiny_model):
        def corr(gamma):
            cfg = TraceConfig(
                prompt_len=16,
                decode_len=48,
                granularity=8,
                gamma=gamma,
                drift_rate=0.0,
                phase_shift=0.0,
            )
            trace = generate_trace(tiny_model, cfg, seed=5)
            cond = layer_correlation(trace, 2)
            return float(np.nanmean(cond))
        assert corr(0.6) > corr(0.0)

    def test_swaps_preserve_density(self, tiny_model):
        """Identity swaps must not change the activation mass."""
        calm = TraceConfig(
            prompt_len=16,
            decode_len=64,
            granularity=8,
            drift_rate=0.0,
            phase_shift=0.0,
        )
        wild = TraceConfig(
            prompt_len=16,
            decode_len=64,
            granularity=8,
            drift_rate=0.02,
            phase_shift=0.8,
        )
        d_calm = generate_trace(tiny_model, calm, seed=5).density()
        d_wild = generate_trace(tiny_model, wild, seed=5).density()
        assert d_wild == pytest.approx(d_calm, rel=0.1)


class TestTraceAccessors:
    def test_frequencies_shape_and_range(self, tiny_trace):
        f = tiny_trace.frequencies(0)
        assert f.shape == (320,)
        assert (f >= 0).all() and (f <= 1).all()

    def test_prefill_frequencies_use_prompt_only(self, tiny_trace):
        f = tiny_trace.prefill_frequencies(1)
        expected = tiny_trace.layers[1][:32].mean(axis=0)
        assert np.allclose(f, expected)

    def test_decode_tokens_range(self, tiny_trace):
        tokens = list(tiny_trace.decode_tokens())
        assert tokens[0] == 32 and tokens[-1] == 95

    def test_empty_token_slice_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.frequencies(0, tokens=slice(5, 5))

    def test_trace_validation(self, tiny_trace):
        with pytest.raises(ValueError):
            ActivationTrace(
                layout=tiny_trace.layout,
                layers=tiny_trace.layers[:-1],
                parents=tiny_trace.parents,
                prompt_len=32,
                seed=0,
            )
        with pytest.raises(ValueError):
            ActivationTrace(
                layout=tiny_trace.layout,
                layers=tiny_trace.layers,
                parents=tiny_trace.parents,
                prompt_len=1000,
                seed=0,
            )


class TestStats:
    def test_jaccard_identity(self):
        a = np.array([True, False, True])
        assert jaccard_similarity(a, a) == 1.0

    def test_jaccard_disjoint(self):
        a = np.array([True, False])
        b = np.array([False, True])
        assert jaccard_similarity(a, b) == 0.0

    def test_jaccard_empty_sets_are_similar(self):
        a = np.zeros(4, dtype=bool)
        assert jaccard_similarity(a, a) == 1.0

    def test_jaccard_shape_mismatch(self):
        with pytest.raises(ValueError):
            jaccard_similarity(np.zeros(3, bool), np.zeros(4, bool))

    def test_similarity_curve_decays(self, tiny_trace):
        curve = token_similarity_curve(tiny_trace, 20)
        assert curve[0] == 1.0
        assert curve[1] > curve[10] > curve[20] - 0.05
        assert curve[1] > 0.8  # paper: adjacent >90%; tiny model a bit less

    def test_similarity_curve_validation(self, tiny_trace):
        with pytest.raises(ValueError):
            token_similarity_curve(tiny_trace, 0)

    def test_hot_cold_share_near_paper(self, tiny_trace):
        share = hot_cold_computation_share(tiny_trace)
        assert 0.6 < share <= 1.0

    def test_hot_share_full_fraction_is_one(self, tiny_trace):
        assert hot_cold_computation_share(tiny_trace, 1.0) \
            == pytest.approx(1.0)

    def test_churn_in_unit_range(self, tiny_trace):
        churn = hot_set_churn(tiny_trace)
        assert 0.0 <= churn <= 1.0

    def test_layer_correlation_rejects_layer_zero(self, tiny_trace):
        with pytest.raises(ValueError):
            layer_correlation(tiny_trace, 0)

    def test_layer_correlation_high_for_recorded_parents(self, tiny_trace):
        cond = layer_correlation(tiny_trace, 2)
        top = np.sort(cond[~np.isnan(cond)])[-32:]
        assert top.mean() > 0.85

    def test_load_imbalance_balanced_placement(self, tiny_trace):
        placement = np.arange(320) % 8
        ratio = dimm_load_imbalance(tiny_trace, placement, layer=1)
        assert ratio >= 1.0

    def test_load_imbalance_skewed_placement_is_worse(self, tiny_trace):
        balanced = np.arange(320) % 8
        skewed = np.zeros(320, dtype=np.int64)
        skewed[300:] = np.arange(20) % 7 + 1
        r_bal = dimm_load_imbalance(tiny_trace, balanced, layer=1)
        r_skew = dimm_load_imbalance(tiny_trace, skewed, layer=1)
        assert r_skew > r_bal

    def test_load_imbalance_validation(self, tiny_trace):
        with pytest.raises(ValueError):
            dimm_load_imbalance(tiny_trace, np.zeros(3, dtype=int), 0)
        with pytest.raises(ValueError):
            dimm_load_imbalance(tiny_trace, np.arange(320) % 4, 0, window=0)
