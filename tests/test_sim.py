"""Unit + property tests for the discrete-event engine and pipelines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Acquire,
    Release,
    Resource,
    Simulator,
    Timeout,
    overlap_two_stage,
    pipeline_makespan,
)


class TestEngine:
    def test_single_timeout(self):
        sim = Simulator()

        def proc():
            yield Timeout(2.5)

        sim.process(proc())
        assert sim.run() == 2.5

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            yield Timeout(2.0)

        sim.process(proc())
        assert sim.run() == 3.0

    def test_parallel_processes_overlap(self):
        sim = Simulator()

        def proc(d):
            yield Timeout(d)

        sim.process(proc(3.0))
        sim.process(proc(1.0))
        assert sim.run() == 3.0

    def test_start_delay(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)

        sim.process(proc(), delay=2.0)
        assert sim.run() == 3.0

    def test_resource_serialises(self):
        sim = Simulator()
        r = Resource("dev")
        ends = []

        def proc():
            yield Acquire(r)
            yield Timeout(1.0)
            yield Release(r)
            ends.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert ends == [1.0, 2.0]

    def test_join_waits_for_completion(self):
        sim = Simulator()
        order = []

        def worker():
            yield Timeout(5.0)
            order.append(("worker", sim.now))

        def waiter(w):
            yield w
            order.append(("waiter", sim.now))

        w = sim.process(worker())
        sim.process(waiter(w))
        sim.run()
        assert order == [("worker", 5.0), ("waiter", 5.0)]

    def test_join_finished_process_is_immediate(self):
        sim = Simulator()

        def worker():
            yield Timeout(1.0)

        w = sim.process(worker())
        sim.run()

        def waiter():
            yield w
            yield Timeout(1.0)

        sim.process(waiter())
        assert sim.run() == 2.0

    def test_release_without_hold_raises(self):
        sim = Simulator()
        r = Resource("dev")

        def proc():
            yield Release(r)

        sim.process(proc())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_run_until_stops_early(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        sim.process(proc())
        assert sim.run(until=3.0) == 3.0

    def test_run_until_is_resumable(self):
        """Bounded runs are checkpoints, not terminations.

        The sharded coordinator drives shard calendars window-by-window
        through this contract: events timestamped exactly at ``until``
        fire within the bounded run; the first event past it is pushed
        back unconsumed and fires on the next ``run`` with its original
        scheduling order preserved.
        """
        sim = Simulator()
        fired = []

        def proc(name, delay):
            yield Timeout(delay)
            fired.append(name)

        # same instant (t=5.0) for b and c: registration order must
        # survive the push-back across the window boundary at t=2.0
        sim.process(proc("a", 2.0))
        sim.process(proc("b", 5.0))
        sim.process(proc("c", 5.0))
        assert sim.run(until=2.0) == 2.0
        assert fired == ["a"]
        assert sim.run(until=5.0) == 5.0
        assert fired == ["a", "b", "c"]

    def test_run_until_past_last_event(self):
        """A window past the last event drains the calendar and stops
        at the final event's time (the coordinator lands idle shards on
        the barrier itself)."""
        sim = Simulator()

        def proc():
            yield Timeout(1.0)

        sim.process(proc())
        assert sim.run(until=4.0) == 1.0
        assert sim.run(until=9.0) == 1.0  # empty calendar: no-op

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_fifo_waiters(self):
        sim = Simulator()
        r = Resource("dev")
        order = []

        def proc(name):
            yield Acquire(r)
            order.append(name)
            yield Timeout(1.0)
            yield Release(r)

        for name in "abc":
            sim.process(proc(name))
        sim.run()
        assert order == ["a", "b", "c"]


class TestPipeline:
    def test_empty(self):
        assert pipeline_makespan([]) == 0.0

    def test_single_item(self):
        assert pipeline_makespan([[1.0, 2.0, 3.0]]) == 6.0

    def test_classic_two_stage(self):
        # transfer 1s each, compute 2s each: last compute ends at 1+3*2
        assert pipeline_makespan([[1, 2]] * 3) == 7.0

    def test_bottleneck_stage_dominates(self):
        n = 5
        span = pipeline_makespan([[1, 10]] * n)
        assert span == pytest.approx(1 + n * 10)

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            pipeline_makespan([[1, 2], [1]])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pipeline_makespan([[1, -2]])
        with pytest.raises(ValueError):
            overlap_two_stage([1], [-1])

    def test_closed_form_matches_des(self):
        transfer = [0.5, 2.0, 0.1, 1.0]
        compute = [1.0, 0.2, 3.0, 0.5]
        des = pipeline_makespan(list(map(list, zip(transfer, compute))))
        assert overlap_two_stage(transfer, compute) == pytest.approx(des)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            overlap_two_stage([1, 2], [1])

    @given(st.lists(st.tuples(st.floats(0, 10), st.floats(0, 10)),
                    min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_property_closed_form_equals_des(self, pairs):
        """The prefetch recurrence and the event engine agree exactly."""
        transfer = [t for t, _ in pairs]
        compute = [c for _, c in pairs]
        des = pipeline_makespan([[t, c] for t, c in pairs])
        assert overlap_two_stage(transfer, compute) == pytest.approx(
            des, abs=1e-9
        )

    @given(st.lists(st.tuples(st.floats(0, 5), st.floats(0, 5)),
                    min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_property_overlap_bounds(self, pairs):
        """Makespan is bounded by serial sum and below by each stage."""
        transfer = [t for t, _ in pairs]
        compute = [c for _, c in pairs]
        span = overlap_two_stage(transfer, compute)
        assert span <= sum(transfer) + sum(compute) + 1e-9
        assert span >= max(sum(transfer), sum(compute)) - 1e-9
