"""Failure domains, partial degradation, and trace replay tests.

PR-level contracts for the domain-aware fault model, inside-out:

* **sampling** — ``crashes_per_domain`` draws from an RNG keyed on the
  domain *name* in the same namespace as the per-machine streams, so a
  single-member domain named ``str(m)`` reproduces machine ``m``'s
  crash draws bit-for-bit (hypothesis-pinned);
* **schedule** — domain expansion (``expanded_crashes`` is ``crashes``
  verbatim with no domain crashes), degrade-state queries, the
  correlated-outage sweep line, and the sharpened validation messages
  (offending key + valid index range, did-you-mean for domain typos);
* **serving** — a DIMM degrade renegotiates the machine (availability
  stays 1.0, throughput drops, nothing strands), KV-overflow evictions
  are honest migrations back onto the same machine, and the fused loop
  stays bit-identical to the stepped reference under domain crashes
  and degrades for hermes, dense, and dejavu fleets;
* **preemption** — the deadline preemptor refuses to evict onto an
  unhealthy machine (the victim's re-admission lands where it died);
* **replay** — a dumped failure trace loads back to an equal schedule
  and replaying it through a scenario reproduces the sampled run
  bit-for-bit;
* **acceptance** — on the bundled rack-outage drill, a rack-wide
  correlated crash damages joint SLO strictly more than the same
  number of independent crashes, and per-domain availability plus
  ``correlated_outage_seconds`` expose the difference.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware import Machine
from repro.models import get_model
from repro.scenarios import load_scenario
from repro.serving import (
    CrashSpec,
    DegradeSpec,
    DomainCrashSpec,
    DomainSpec,
    FaultSchedule,
    MachineGroup,
    SampleSpec,
    ServingConfig,
    ServingSimulator,
    dump_fault_trace,
    load_fault_trace,
    sample_faults,
)
from repro.telemetry import MachineDegraded, RecordingTracer, RequestMigrated

from tests.test_faults import (
    _assert_reports_equal,
    _serve,
    _trace,
    _workload,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
DOMAINS_SPEC = REPO / "scenarios" / "chaos_domains_tiny.json"

RACKS = (DomainSpec("rack0", (0, 1)), DomainSpec("rack1", (2, 3)))


def _tight_machine(per_dimm_bytes: int = 1_613_824) -> Machine:
    """A machine whose DIMM pool barely fits tiny-test weights + KV.

    The default :class:`Machine` carries a 256 GiB pool — a KV capacity
    of tens of millions of tokens, so degrade-driven eviction is
    unreachable.  Shrinking each DIMM to ~1.6 MB leaves room for only
    ~1600 resident tokens pristine and ~40 on half the pool, which a
    tiny serving run overflows immediately.
    """
    base = Machine()
    geometry = dataclasses.replace(
        base.dimm.geometry, capacity_bytes=per_dimm_bytes)
    dimm = dataclasses.replace(base.dimm, geometry=geometry)
    return dataclasses.replace(base, dimm=dimm)


# ----------------------------------------------------------------------
# sampling: domain draws share the per-machine RNG namespace
# ----------------------------------------------------------------------
class TestDomainSampling:
    @settings(deadline=None, max_examples=40,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**31), machine=st.integers(0, 7),
           mean=st.floats(0.2, 3.0))
    def test_single_member_domain_matches_per_machine(
            self, seed, machine, mean):
        spec = SampleSpec(horizon=1.0, mean_downtime=0.05,
                          restart_fraction=0.7)
        per_machine = sample_faults(
            dataclasses.replace(spec, crashes_per_machine=mean),
            num_machines=8, seed=seed)
        per_domain = sample_faults(
            dataclasses.replace(spec, crashes_per_domain=mean),
            num_machines=8, seed=seed,
            domains=(DomainSpec(str(machine), (machine,)),))
        want = [(c.at, c.restart_after) for c in per_machine.crashes
                if c.machine == machine]
        got = [(c.at, c.restart_after) for c in per_domain.expanded_crashes
               if c.machine == machine]
        assert got == want

    def test_domain_sampling_is_correlated(self):
        spec = SampleSpec(horizon=1.0, crashes_per_domain=2.0,
                          mean_downtime=0.05, restart_fraction=1.0)
        schedule = sample_faults(spec, num_machines=4, seed=3,
                                 domains=RACKS)
        assert schedule.domain_crashes
        for crash in schedule.domain_crashes:
            members = {m for d in RACKS if d.name == crash.domain
                       for m in d.machines}
            expanded = {c.machine for c in schedule.expanded_crashes
                        if c.at == crash.at}
            assert members <= expanded

    def test_sampling_deterministic_across_calls(self):
        spec = SampleSpec(horizon=1.0, crashes_per_machine=1.0,
                          crashes_per_domain=1.0, mean_downtime=0.04)
        runs = [sample_faults(spec, num_machines=4, seed=11,
                              domains=RACKS) for _ in range(2)]
        assert runs[0] == runs[1]


# ----------------------------------------------------------------------
# schedule: expansion, degrade state, correlated outage, validation
# ----------------------------------------------------------------------
class TestDomainSchedule:
    def test_expanded_crashes_identity_without_domain_crashes(self):
        schedule = FaultSchedule(crashes=(CrashSpec(0, 0.01, 0.02),),
                                 domains=RACKS)
        assert schedule.expanded_crashes is schedule.crashes

    def test_domain_crash_expands_to_every_member(self):
        schedule = FaultSchedule(
            domains=RACKS,
            domain_crashes=(DomainCrashSpec("rack0", 0.01, 0.02),))
        assert [(c.machine, c.at, c.restart_after)
                for c in schedule.expanded_crashes] == [
            (0, 0.01, 0.02), (1, 0.01, 0.02)]
        assert schedule.is_down(0, 0.015) and schedule.is_down(1, 0.015)
        assert not schedule.is_down(2, 0.015)

    def test_degrade_state_and_health(self):
        schedule = FaultSchedule(degrades=(
            DegradeSpec(0, 0.01, dimm_fraction=0.5),
            DegradeSpec(0, 0.02, bandwidth_factor=0.5),
        ))
        assert schedule.degrade_state(0, 0.0) == (1.0, 1.0)
        assert schedule.degrade_state(0, 0.015) == (0.5, 1.0)
        assert schedule.degrade_state(0, 0.025) == (0.5, 0.5)
        assert schedule.health_state(0, 0.0) == "ok"
        assert schedule.health_state(0, 0.015) == "degraded"

    def test_correlated_outage_is_overlap_time(self):
        schedule = FaultSchedule(
            domains=RACKS,
            crashes=(CrashSpec(0, 0.010, 0.010),
                     CrashSpec(1, 0.015, 0.010),
                     CrashSpec(2, 0.015, 0.010)))
        # rack0: [0.010, 0.020) and [0.015, 0.025) overlap for 5 ms;
        # rack1's lone crash never overlaps anything
        assert schedule.correlated_outage_within(1.0) == pytest.approx(
            0.005)
        # the horizon clips the overlap window
        assert schedule.correlated_outage_within(0.018) == pytest.approx(
            0.003)

    def test_correlated_outage_nan_without_domains(self):
        schedule = FaultSchedule(crashes=(CrashSpec(0, 0.01, 0.02),
                                          CrashSpec(1, 0.01, 0.02)))
        assert math.isnan(schedule.correlated_outage_within(1.0))

    def test_validate_fleet_names_key_and_range(self):
        schedule = FaultSchedule(degrades=(
            DegradeSpec(5, 0.01, dimm_fraction=0.5),))
        with pytest.raises(ValueError, match=(
                r"faults\.degrades names machine 5 but the fleet has 4 "
                r"machines \(valid indices: 0\.\.3\)")):
            schedule.validate_fleet(4)

    def test_validate_fleet_names_domain_key(self):
        schedule = FaultSchedule(domains=(DomainSpec("rack9", (0, 7)),))
        with pytest.raises(ValueError,
                           match=r"faults\.domains\['rack9'\]"):
            schedule.validate_fleet(4)

    def test_unknown_domain_suggests_closest(self):
        with pytest.raises(ValueError, match=r"did you mean 'rack0'"):
            FaultSchedule(
                domains=RACKS,
                domain_crashes=(DomainCrashSpec("rak0", 0.01, 0.02),))

    def test_overlapping_domains_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            FaultSchedule(domains=(DomainSpec("a", (0, 1)),
                                   DomainSpec("b", (1, 2))))


# ----------------------------------------------------------------------
# serving: degradation renegotiates instead of killing
# ----------------------------------------------------------------------
DOMAIN_FAULT_KINDS = {
    "domain-crash": FaultSchedule(
        domains=(DomainSpec("rack", (0, 1)),),
        domain_crashes=(DomainCrashSpec("rack", 0.004, 0.006),),
        restart_warmup=0.001),
    "degrade-dimms": FaultSchedule(degrades=(
        DegradeSpec(1, 0.005, dimm_fraction=0.5),)),
    "degrade-bandwidth": FaultSchedule(degrades=(
        DegradeSpec(0, 0.004, bandwidth_factor=0.5),)),
    "degrade-then-crash": FaultSchedule(
        crashes=(CrashSpec(0, 0.008, 0.004),),
        degrades=(DegradeSpec(0, 0.003, dimm_fraction=0.75),),
        restart_warmup=0.001),
}


class TestFusedEqualsSteppedUnderDomains:
    @pytest.mark.parametrize("kind", sorted(DOMAIN_FAULT_KINDS))
    @pytest.mark.parametrize("backend", ["hermes", "dense", "dejavu"])
    def test_shared_queue(self, kind, backend):
        fleet = [MachineGroup(count=2, backend=backend)]
        fused = _serve(DOMAIN_FAULT_KINDS[kind], fleet=fleet, macro=True)
        stepped = _serve(DOMAIN_FAULT_KINDS[kind], fleet=fleet,
                         macro=False)
        _assert_reports_equal(fused, stepped)

    @pytest.mark.parametrize("health_aware", [False, True])
    def test_domains_scenario(self, health_aware):
        scenario = load_scenario(DOMAINS_SPEC)
        trace = scenario.build_trace()
        reports = {}
        for macro in (True, False):
            run = dataclasses.replace(
                scenario,
                config=dataclasses.replace(
                    scenario.config, macro_step=macro,
                    health_aware=health_aware))
            reports[macro] = run.run(trace)
        _assert_reports_equal(reports[True], reports[False])


class TestDegradation:
    def test_degrade_keeps_machine_alive_but_slower(self):
        healthy = _serve(None, machines=1)
        degraded = _serve(
            FaultSchedule(degrades=(
                DegradeSpec(0, 0.002, dimm_fraction=0.5),)),
            machines=1)
        assert not degraded.unfinished
        assert degraded.availability == 1.0
        assert degraded.makespan > healthy.makespan
        assert degraded.tokens_per_second < healthy.tokens_per_second

    def test_kv_overflow_evicts_as_migration_onto_self(self):
        faults = FaultSchedule(degrades=(
            DegradeSpec(0, 0.004, dimm_fraction=0.5),))
        tracer = RecordingTracer()
        simulator = ServingSimulator(
            "tiny-test", "fcfs",
            ServingConfig(max_batch=6, num_machines=1, faults=faults),
            machine=_tight_machine(), trace=_trace())
        report = simulator.run(list(_workload(24)), tracer=tracer)
        degrades = [e for e in tracer.events
                    if isinstance(e, MachineDegraded)]
        assert degrades and degrades[0].evicted > 0
        evictions = [e for e in tracer.events
                     if isinstance(e, RequestMigrated)
                     and e.time == degrades[0].time]
        assert len(evictions) == degrades[0].evicted
        # shared-queue mode: evicted KV re-prefills via the one queue
        assert all(e.from_machine == 0 for e in evictions)
        assert report.migrations >= degrades[0].evicted
        assert not report.unfinished  # evicted work finishes eventually

    def test_kv_eviction_fused_equals_stepped(self):
        faults = FaultSchedule(degrades=(
            DegradeSpec(0, 0.004, dimm_fraction=0.5),))
        reports = {}
        for macro in (True, False):
            simulator = ServingSimulator(
                "tiny-test", "fcfs",
                ServingConfig(max_batch=6, num_machines=1,
                              macro_step=macro, faults=faults),
                machine=_tight_machine(), trace=_trace())
            reports[macro] = simulator.run(list(_workload(24)))
        _assert_reports_equal(reports[True], reports[False])


# ----------------------------------------------------------------------
# preemption: health gating
# ----------------------------------------------------------------------
class TestHealthGatedPreemption:
    def test_no_victim_on_unhealthy_machine(self):
        from repro.cluster.slo import (
            DeadlinePreemptor,
            PriorityClass,
            SLOPolicy,
        )
        from repro.serving import get_policy
        from repro.serving.simulator import ActiveEntry, RequestRecord

        slo = SLOPolicy(classes=(
            PriorityClass("fast", priority=1, ttft_slo=0.001),
            PriorityClass("default", priority=0),
        ))
        gated = DeadlinePreemptor(get_policy("fcfs"), slo,
                                  health=lambda executor, now: "degraded")
        open_ = DeadlinePreemptor(get_policy("fcfs"), slo,
                                  health=lambda executor, now: "ok")

        simulator = ServingSimulator(
            "tiny-test", "fcfs",
            ServingConfig(max_batch=6, num_machines=1),
            trace=_trace())
        executor = simulator.executors[0]
        workload = _workload(4)
        head = dataclasses.replace(workload[0], class_name="fast")
        queue = [head]
        active = [ActiveEntry(request=workload[3],
                              record=RequestRecord(request=workload[3]),
                              admitted_at=0.0)]
        now = head.arrival + 0.5  # hopelessly past the deadline
        assert open_.victim(now, queue, active, executor) is not None
        assert gated.victim(now, queue, active, executor) is None


# ----------------------------------------------------------------------
# replay: dump -> load -> rerun is bit-identical
# ----------------------------------------------------------------------
class TestTraceReplay:
    def test_round_trip_schedule_equality(self, tmp_path):
        spec = SampleSpec(horizon=0.05, crashes_per_machine=1.5,
                          crashes_per_domain=1.0, mean_downtime=0.004,
                          stragglers_per_machine=1.0,
                          mean_straggle=0.003)
        schedule = dataclasses.replace(
            sample_faults(spec, num_machines=4, seed=5, domains=RACKS,
                          restart_warmup=0.001),
            degrades=(DegradeSpec(3, 0.01, dimm_fraction=0.5),))
        path = tmp_path / "faults.jsonl"
        dump_fault_trace(schedule, path)
        assert load_fault_trace(path) == schedule
        # every line is strict JSON with a kind tag
        for line in path.read_text().splitlines():
            assert "kind" in json.loads(line)

    def test_replay_reproduces_sampled_run(self, tmp_path):
        from tools.gen_fault_trace import main as gen_main

        out = tmp_path / "replay.jsonl"
        assert gen_main([str(DOMAINS_SPEC), str(out)]) == 0

        scenario = load_scenario(DOMAINS_SPEC)
        data = json.loads(DOMAINS_SPEC.read_text())
        data["faults"] = {"trace": str(out)}
        replay_path = tmp_path / "replay_scenario.json"
        replay_path.write_text(json.dumps(data))
        replayed = load_scenario(replay_path)
        assert replayed.config.faults == scenario.config.faults

        trace = scenario.build_trace()
        _assert_reports_equal(scenario.run(trace), replayed.run(trace))


# ----------------------------------------------------------------------
# acceptance: the bundled rack-outage drill
# ----------------------------------------------------------------------
class TestChaosDomainsScenario:
    def _run_variant(self, mutate=None):
        scenario = load_scenario(DOMAINS_SPEC)
        if mutate is not None:
            scenario = mutate(scenario)
        return scenario.run(scenario.build_trace())

    def test_correlated_crash_hurts_more_than_independent(self):
        correlated = self._run_variant()

        def independent(scenario):
            faults = scenario.config.faults
            outage = faults.domain_crashes[0]
            spread = dataclasses.replace(
                faults, domain_crashes=(),
                crashes=(
                    CrashSpec(0, outage.at, outage.restart_after),
                    CrashSpec(1, outage.at + 0.014,
                              outage.restart_after),
                ))
            return dataclasses.replace(
                scenario,
                config=dataclasses.replace(scenario.config,
                                           faults=spread))

        independent_report = self._run_variant(independent)
        joint = correlated.slo_attainment("interactive")["joint"]
        spread_joint = independent_report.slo_attainment(
            "interactive")["joint"]
        assert joint < spread_joint
        assert correlated.correlated_outage_seconds > 0
        # the same two crashes, staggered, never overlap
        assert independent_report.correlated_outage_seconds == 0.0

    def test_degrade_only_renegotiates_without_downtime(self):
        def degrade_only(scenario):
            faults = scenario.config.faults
            return dataclasses.replace(
                scenario,
                config=dataclasses.replace(
                    scenario.config,
                    faults=dataclasses.replace(faults,
                                               domain_crashes=())))

        def fault_free(scenario):
            return dataclasses.replace(
                scenario,
                config=dataclasses.replace(scenario.config, faults=None))

        degraded = self._run_variant(degrade_only)
        pristine = self._run_variant(fault_free)
        assert degraded.availability == 1.0
        assert not degraded.unfinished
        assert degraded.tokens_per_second < pristine.tokens_per_second

    def test_report_domain_views(self):
        report = self._run_variant()
        availability = report.domain_availability()
        assert set(availability) == {"rack0", "rack1"}
        assert availability["rack0"] < availability["rack1"] == 1.0
        assert report.correlated_outage_seconds == pytest.approx(0.007)
        # a domain-free run renders the domain views empty/nan
        plain = self._run_variant(lambda s: dataclasses.replace(
            s, config=dataclasses.replace(s.config, faults=None)))
        assert plain.domain_availability() == {}
        assert math.isnan(plain.correlated_outage_seconds)
