"""Tests for the extension modules: NDP ISA, trace IO, quality model."""

import numpy as np
import pytest

from repro.core import ActivationPredictor, PredictorConfig
from repro.ndp import (
    LinkSend,
    Mac,
    Merge,
    NDPCore,
    NDPExecutor,
    RowRead,
    Softmax,
    lower_attention,
    lower_gemv,
)
from repro.quality import activation_coverage, oracle_report
from repro.sparsity import TraceConfig, generate_trace, load_trace, save_trace

STREAM_BW = 102.4e9


@pytest.fixture
def executor():
    return NDPExecutor(stream_bandwidth=STREAM_BW)


class TestLowering:
    def test_gemv_chunks_cover_all_bytes(self):
        stream = lower_gemv(20_000, chunk_bytes=8192)
        reads = [c for c in stream if isinstance(c, RowRead)]
        assert sum(c.num_bytes for c in reads) == 20_000

    def test_gemv_pairs_reads_with_macs(self):
        stream = lower_gemv(16384)
        kinds = [type(c) for c in stream]
        assert kinds == [RowRead, Mac, RowRead, Mac]

    def test_attention_includes_per_head_softmax(self):
        stream = lower_attention(8192, context_len=128, num_heads=4, batch=2)
        softmaxes = [c for c in stream if isinstance(c, Softmax)]
        assert len(softmaxes) == 8

    def test_command_validation(self):
        with pytest.raises(ValueError):
            RowRead(0)
        with pytest.raises(ValueError):
            Mac(10, batch=0)
        with pytest.raises(ValueError):
            Softmax(0)
        with pytest.raises(ValueError):
            Merge(-1)
        with pytest.raises(ValueError):
            LinkSend(0)
        with pytest.raises(ValueError):
            lower_gemv(0)


class TestExecutor:
    @pytest.mark.parametrize("batch", [1, 2, 4, 16])
    def test_matches_analytic_core_model(self, executor, batch):
        """The micro-architectural executor validates NDPCore.gemv_time."""
        core = NDPCore()
        weight_bytes = 64 * 2**20
        analytic = core.gemv_time(weight_bytes, STREAM_BW, batch=batch)
        micro = executor.execute(lower_gemv(weight_bytes, batch=batch))
        assert micro == pytest.approx(analytic, rel=0.02)

    def test_memory_bound_stream_hides_compute(self, executor):
        """At batch 1 the MAC pipeline hides behind the row stream."""
        stream = lower_gemv(8 * 2**20, batch=1)
        t = executor.execute(stream)
        assert t == pytest.approx(8 * 2**20 / STREAM_BW, rel=0.02)

    def test_link_send_serialises_after_compute(self, executor):
        base = executor.execute(lower_gemv(2**20))
        with_send = executor.execute(
            lower_gemv(2**20) + [LinkSend(25_000_000)]
        )
        assert with_send == pytest.approx(base + 1e-3, rel=0.05)

    def test_merge_after_macs(self, executor):
        stream = lower_gemv(2**20) + [Merge(8192)]
        assert executor.execute(stream) > executor.execute(lower_gemv(2**20))

    def test_unknown_command_rejected(self, executor):
        with pytest.raises(TypeError):
            executor.execute(["not a command"])

    def test_validation(self):
        with pytest.raises(ValueError):
            NDPExecutor(stream_bandwidth=0)


class TestTraceIO:
    def test_roundtrip(self, tmp_path, tiny_model):
        trace = generate_trace(
            tiny_model,
            TraceConfig(prompt_len=8, decode_len=8, granularity=8),
            seed=5,
        )
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.prompt_len == trace.prompt_len
        assert loaded.seed == trace.seed
        assert loaded.layout.granularity == 8
        for a, b in zip(trace.layers, loaded.layers):
            assert np.array_equal(a, b)
        for a, b in zip(trace.parents, loaded.parents):
            if a is None:
                assert b is None
            else:
                assert np.array_equal(a, b)

    def test_compression_beats_raw_bools(self, tmp_path, tiny_model):
        trace = generate_trace(
            tiny_model,
            TraceConfig(prompt_len=16, decode_len=48, granularity=4),
            seed=5,
        )
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        raw = sum(m.size for m in trace.layers)
        assert path.stat().st_size < raw // 2

    def test_rejects_future_format(self, tmp_path, tiny_model):
        trace = generate_trace(
            tiny_model,
            TraceConfig(prompt_len=4, decode_len=4, granularity=16),
            seed=5,
        )
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        data = dict(np.load(path))
        data["version"] = np.array([99])
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestQuality:
    def test_oracle_is_lossless(self, tiny_trace):
        report = oracle_report(tiny_trace)
        assert report.coverage == 1.0
        assert report.degradation_proxy == 0.0
        assert report.within_paper_claim()

    def test_predictor_coverage_high(self, tiny_trace):
        predictor = ActivationPredictor(tiny_trace.layout, PredictorConfig())
        predictor.initialize(tiny_trace)
        report = activation_coverage(tiny_trace, predictor)
        assert 0.85 < report.coverage <= 1.0
        assert report.degradation_proxy < 0.15
        assert report.per_layer_miss.shape == (tiny_trace.num_layers,)

    def test_worse_predictor_means_worse_coverage(self, tiny_trace):
        good = ActivationPredictor(tiny_trace.layout, PredictorConfig())
        good.initialize(tiny_trace)
        bad = ActivationPredictor(
            tiny_trace.layout,
            PredictorConfig(use_layer_prediction=False, s_up=1,
                            threshold=15.0))
        bad.initialize(tiny_trace)
        r_good = activation_coverage(tiny_trace, good)
        r_bad = activation_coverage(tiny_trace, bad)
        assert r_good.coverage >= r_bad.coverage
