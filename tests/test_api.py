"""Tests for the stable public facade (`repro.api`) and CLI conventions."""

from __future__ import annotations

import ast
import json
import pathlib

import pytest

import repro
from repro import api
from repro.experiments.cluster_eval import resolve_scenario

ROOT = pathlib.Path(__file__).resolve().parent.parent
TINY = resolve_scenario("mixed_slo_tiny.json")


class TestFacade:
    def test_reexported_from_package(self):
        assert repro.api is api
        assert "api" in repro.__all__

    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_list_backends(self):
        backends = api.list_backends()
        assert backends == sorted(backends)
        assert {"hermes", "dense", "dejavu"} <= set(backends)

    def test_list_models(self):
        assert "tiny-test" in api.list_models()

    def test_simulate_round_trip(self):
        """load -> simulate -> typed report, path and object alike."""
        from_path = api.simulate(TINY)
        assert isinstance(from_path, api.ClusterReport)
        scenario = api.load_scenario(TINY)
        from_object = api.simulate(scenario)
        # same seeded scenario, same simulated outcome
        assert from_object.tokens_per_second == \
            from_path.tokens_per_second
        assert from_object.makespan == from_path.makespan

    def test_plan_round_trip(self):
        result = api.plan(TINY, budget=2, quick=True)
        assert isinstance(result, api.PlanResult)
        assert result.best is not None
        assert isinstance(result.best.candidate, api.FleetCandidate)

    def test_offline_quickstart_surface(self):
        """The README quickstart, spelled entirely through the facade."""
        model = api.get_model("tiny-test")
        machine = api.Machine()
        trace = api.generate_trace(
            model,
            api.TraceConfig(prompt_len=8, decode_len=8, granularity=4),
            seed=7,
        )
        result = api.HermesSystem(machine, model).run(trace, batch=1)
        assert result.tokens_per_second > 0


class TestExamplesUseOnlyTheFacade:
    def test_examples_import_only_repro_api(self):
        """Every bundled example imports repro exclusively via
        ``repro.api`` — the facade is the supported surface, and the
        examples are its living documentation."""
        offenders = []
        for path in sorted((ROOT / "examples").glob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name.split(".")[0] == "repro":
                            offenders.append(f"{path.name}: import "
                                             f"{alias.name}")
                elif isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    if module.split(".")[0] == "repro" \
                            and module != "repro.api":
                        offenders.append(
                            f"{path.name}: from {module} import ...")
        assert not offenders, offenders


class TestCLIConventions:
    def run_cli(self, capsys, *argv):
        from repro.experiments.__main__ import main

        try:
            code = main(list(argv))
        except SystemExit as exc:
            code = exc.code
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_json_moves_tables_to_stderr(self, capsys):
        code, out, err = self.run_cli(
            capsys, "cluster", "--quick", "--scenario", str(TINY),
            "--json")
        assert code == 0
        reports = json.loads(out)  # stdout is exactly one document
        assert isinstance(reports, list) and len(reports) == 1
        report = reports[0]
        assert {"name", "description", "headers", "rows",
                "notes"} <= set(report)
        assert report["rows"], "empty report rows"
        assert len(report["headers"]) == len(report["rows"][0])
        assert "==" in err  # the text table went to stderr

    def test_without_json_tables_on_stdout(self, capsys):
        code, out, _ = self.run_cli(
            capsys, "cluster", "--quick", "--scenario", str(TINY))
        assert code == 0
        assert "==" in out

    def test_unknown_experiment_exits_two(self, capsys):
        code, _, err = self.run_cli(capsys, "no_such_experiment")
        assert code == 2
        assert "unknown experiments" in err

    def test_no_experiment_exits_two(self, capsys):
        assert self.run_cli(capsys)[0] == 2

    def test_alias_warns_and_resolves(self, capsys):
        with pytest.warns(DeprecationWarning, match="serving_eval"):
            code, _, err = self.run_cli(
                capsys, "serving_eval", "--quick")
        assert code == 0
        assert "deprecated alias" in err

    def test_list_mentions_subcommands_and_aliases(self, capsys):
        code, out, _ = self.run_cli(capsys, "--list")
        assert code == 0
        assert "plan" in out and "watch" in out
        assert "deprecated" in out

    def test_experiment_result_to_json_strict(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(
            name="t", description="d", headers=["a", "b"],
            rows=[[1, float("nan")], ["x", None]], notes=["n"])
        payload = json.loads(json.dumps(result.to_json()))
        assert payload["rows"] == [[1, None], ["x", None]]
