"""Tests for the capacity planner (`repro.planner`)."""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.baselines.base import (
    hermes_gpu_hot_budget,
    hermes_memory_feasible,
    streamed_token_transfer_floor,
    weights_resident_fraction,
)
from repro.core import HermesSystem
from repro.experiments.cluster_eval import resolve_scenario
from repro.hardware import GPU_REGISTRY, Machine, get_gpu
from repro.models import get_model, list_models
from repro.planner import (
    FleetCandidate,
    enumerate_candidates,
    offered_load,
    pareto_frontier,
    plan,
)
from repro.planner.plan import _validate
from repro.planner.prune import analyze_candidate
from repro.scenarios import PlannerSpec, load_scenario, parse_scenario
from repro.serving import BACKENDS

TINY = resolve_scenario("mixed_slo_tiny.json")

#: a workload no fleet in the registries can serve — demand in the
#: tens of millions of tokens/sec — so the analytic throughput prune
#: actually fires (the CI scenario is servable, so nothing prunes there)
IMPOSSIBLE = {
    "model": "tiny-test",
    "trace": {"granularity": 4, "seed": 7},
    "cluster": {"max_batch": 8},
    "classes": {"rt": {"priority": 1, "ttft_slo": 1e-6,
                       "tbt_slo": 1e-7}},
    "tenants": [{"class": "rt", "rate": 1e6, "num_requests": 64,
                 "prompt_lens": {"kind": "fixed", "mean": 16},
                 "output_lens": {"kind": "fixed", "mean": 32}}],
    "planner": {"budget": 1, "optimism": 1.5},
}


def tiny_scenario():
    return load_scenario(TINY)


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
class TestPlannerSpec:
    def test_defaults(self):
        spec = PlannerSpec()
        assert spec.budget == 8
        assert spec.backends == ()
        assert spec.target_attainment == 0.95

    def test_scenario_section_parsed(self):
        scenario = parse_scenario({
            "model": "tiny-test",
            "trace": {"granularity": 4, "seed": 7},
            "tenants": [{"rate": 100.0, "num_requests": 4}],
            "planner": {"budget": 3, "backends": ["hermes"],
                        "gpus": ["RTX 4090"], "counts": [1, 2],
                        "optimism": 2.0, "max_cost_usd": 9000},
        })
        assert scenario.planner.budget == 3
        assert scenario.planner.backends == ("hermes",)
        assert scenario.planner.max_cost_usd == 9000

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys.*budgett"):
            parse_scenario({
                "model": "tiny-test",
                "tenants": [{"rate": 100.0, "num_requests": 4}],
                "planner": {"budgett": 3},
            })

    @pytest.mark.parametrize("field, value", [
        ("budget", 0),
        ("target_attainment", 0.0),
        ("target_attainment", 1.5),
        ("optimism", 0.5),
        ("nominal_batches", (0,)),
        ("counts", (0,)),
        ("max_cost_usd", -1.0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            PlannerSpec(**{field: value})

    def test_unknown_registry_names_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            PlannerSpec(backends=("vllm",))
        with pytest.raises(ValueError, match="unknown GPU"):
            PlannerSpec(gpus=("H100",))
        with pytest.raises(KeyError):
            PlannerSpec(models=("GPT-5",))


# ----------------------------------------------------------------------
# enumeration
# ----------------------------------------------------------------------
class TestEnumeration:
    def test_defaults_cover_registries(self):
        scenario = tiny_scenario()
        spec = PlannerSpec(budget=2)
        candidates = enumerate_candidates(scenario, spec)
        assert {c.backend for c in candidates} == set(BACKENDS)
        assert {c.gpu for c in candidates} == set(GPU_REGISTRY)
        assert {c.model for c in candidates} == {scenario.model}
        assert {c.count for c in candidates} == {1, 2}

    def test_order_is_deterministic(self):
        scenario = tiny_scenario()
        spec = PlannerSpec(budget=3)
        assert enumerate_candidates(scenario, spec) == \
            enumerate_candidates(scenario, spec)

    def test_counts_above_budget_dropped(self):
        scenario = tiny_scenario()
        spec = PlannerSpec(budget=2, counts=(1, 2, 4, 8))
        candidates = enumerate_candidates(scenario, spec)
        assert {c.count for c in candidates} == {1, 2}

    def test_restricted_space(self):
        scenario = tiny_scenario()
        spec = PlannerSpec(budget=1, backends=("hermes",),
                           gpus=("RTX 4090",), nominal_batches=(4,))
        candidates = enumerate_candidates(scenario, spec)
        assert candidates == [FleetCandidate(
            backend="hermes", gpu="rtx 4090", model=scenario.model,
            count=1, nominal_batch=4)]


# ----------------------------------------------------------------------
# feasibility kernels vs the real engine
# ----------------------------------------------------------------------
class TestMemoryKernels:
    def test_kernel_matches_hermes_construction(self):
        """The analytic check and HermesSystem agree on every
        (GPU, model) pair in the registries — the planner never prunes
        a fleet the engine would build, nor keeps one it rejects."""
        for gpu_key in sorted(GPU_REGISTRY):
            machine = Machine().with_gpu(get_gpu(gpu_key))
            for model_name in list_models():
                model = get_model(model_name)
                feasible, reason = hermes_memory_feasible(machine, model)
                try:
                    HermesSystem(machine, model)
                    built = True
                except ValueError:
                    built = False
                assert feasible == built, (
                    f"{gpu_key} x {model_name}: kernel says "
                    f"{feasible} ({reason}), engine says {built}")

    def test_infeasible_reports_reason(self):
        machine = Machine().with_gpu(get_gpu("tesla t4")).with_dimms(1)
        feasible, reason = hermes_memory_feasible(
            machine, get_model("LLaMA2-70B"))
        assert not feasible
        assert "DIMM" in reason or "dense weights" in reason

    def test_gpu_hot_budget_sign(self):
        machine = Machine()
        model = get_model("tiny-test")
        assert hermes_gpu_hot_budget(machine, model) > 0
        # the reserve comes straight off the hot budget; a reserve the
        # size of the whole GPU leaves nothing
        assert hermes_gpu_hot_budget(
            machine, model,
            reserve_bytes=machine.gpu.memory_bytes) <= 0

    def test_streamed_floor_positive_and_monotone(self):
        machine = Machine()
        model = get_model("OPT-13B")
        resident = weights_resident_fraction(machine, model)
        assert 0.0 <= resident < 1.0
        lo = streamed_token_transfer_floor(machine, model, resident)
        hi = streamed_token_transfer_floor(machine, model, 0.0)
        assert 0.0 < lo < hi


# ----------------------------------------------------------------------
# analytic prune soundness: never discard a validatable fleet
# ----------------------------------------------------------------------
class TestPruneSoundness:
    @pytest.mark.parametrize("scenario_fn", [
        tiny_scenario,
        lambda: parse_scenario(dict(IMPOSSIBLE)),
    ], ids=["ci-smoke", "impossible-demand"])
    def test_pruned_candidates_fail_validation(self, scenario_fn):
        """Every analytically-pruned candidate really does fail the
        simulator — the prune introduces no false infeasibility."""
        scenario = scenario_fn()
        spec = scenario.planner
        load = offered_load(scenario)
        pruned = [
            a for a in (
                analyze_candidate(c, scenario, load, spec)
                for c in enumerate_candidates(scenario, spec)
            )
            if not a.feasible
        ]
        for analysis in pruned:
            outcome = _validate(
                scenario, analysis.candidate,
                spec.target_attainment, True)
            assert not outcome.passed, (
                f"pruned {analysis.candidate.describe()} but the "
                f"simulator validates it")

    def test_impossible_demand_actually_prunes(self):
        """The companion to the soundness pin: the throughput screen is
        live — on the impossible-demand scenario it discards fleets."""
        scenario = parse_scenario(dict(IMPOSSIBLE))
        load = offered_load(scenario)
        analyses = [
            analyze_candidate(c, scenario, load, scenario.planner)
            for c in enumerate_candidates(scenario, scenario.planner)
        ]
        assert any(not a.throughput_ok for a in analyses)

    def test_memory_prune_only_applies_to_hermes(self):
        scenario = tiny_scenario()
        spec = scenario.planner
        load = offered_load(scenario)
        for backend in ("dense", "dejavu"):
            analysis = analyze_candidate(
                FleetCandidate(backend=backend, gpu="tesla t4",
                               model=scenario.model, count=1,
                               nominal_batch=4),
                scenario, load, spec)
            assert analysis.memory_ok

    def test_max_cost_prunes(self):
        scenario = tiny_scenario()
        spec = dataclasses.replace(scenario.planner, max_cost_usd=1.0)
        load = offered_load(scenario)
        analysis = analyze_candidate(
            FleetCandidate(backend="hermes", gpu="rtx 4090",
                           model=scenario.model, count=1,
                           nominal_batch=4),
            scenario, load, spec)
        assert not analysis.cost_ok and not analysis.feasible


# ----------------------------------------------------------------------
# offered load
# ----------------------------------------------------------------------
class TestOfferedLoad:
    def test_demand_positive_with_slos(self):
        load = offered_load(tiny_scenario())
        assert load.total_output_tokens > 0
        assert load.demanded_tokens_per_second > 0

    def test_no_complete_slo_pair_means_no_demand(self):
        scenario = parse_scenario({
            "model": "tiny-test",
            "trace": {"granularity": 4, "seed": 7},
            "classes": {"soft": {"priority": 1, "ttft_slo": 0.01}},
            "tenants": [{"class": "soft", "rate": 100.0,
                         "num_requests": 8}],
        })
        load = offered_load(scenario)
        assert load.total_output_tokens > 0
        assert load.demanded_tokens_per_second == 0.0


# ----------------------------------------------------------------------
# frontier
# ----------------------------------------------------------------------
class TestFrontier:
    def test_frontier_non_dominated_and_cheapest_first(self):
        scenario = tiny_scenario()
        spec = dataclasses.replace(scenario.planner, budget=4)
        load = offered_load(scenario)
        feasible = [
            a for a in (
                analyze_candidate(c, scenario, load, spec)
                for c in enumerate_candidates(scenario, spec)
            )
            if a.feasible
        ]
        frontier = pareto_frontier(feasible)
        assert frontier
        costs = [a.cost_usd for a in frontier]
        caps = [a.fleet_tokens_per_second for a in frontier]
        assert costs == sorted(costs)
        assert caps == sorted(caps)  # strictly more capacity per $ step
        assert len(set(caps)) == len(caps)
        # every feasible candidate is dominated by (or on) the frontier
        for analysis in feasible:
            assert any(
                f.cost_usd <= analysis.cost_usd
                and f.fleet_tokens_per_second
                >= analysis.fleet_tokens_per_second
                for f in frontier
            )


# ----------------------------------------------------------------------
# plan() end to end
# ----------------------------------------------------------------------
class TestPlan:
    def test_acceptance_run(self):
        """The ISSUE's acceptance invocation: a deterministic cheapest
        SLO-meeting fleet within budget 8 on the tiny scenario."""
        result = plan(TINY, budget=8, quick=True)
        assert result.best is not None
        assert result.best.passed
        assert 1 <= result.best.candidate.count <= 8
        assert result.best.cost_usd == min(
            o.cost_usd for o in result.validations if o.passed)
        # frontier-only validation: no dominated candidate simulated
        assert len(result.validations) == len(result.frontier)

    def test_deterministic_across_jobs(self):
        serial = plan(TINY, budget=4, quick=True, jobs=1)
        parallel = plan(TINY, budget=4, quick=True, jobs=2)
        assert serial.best == parallel.best
        assert serial.validations == parallel.validations
        assert serial.frontier == parallel.frontier

    def test_scenario_object_input(self):
        result = plan(tiny_scenario(), budget=2, quick=True)
        assert result.best is not None
        assert result.budget == 2

    def test_budget_bounds_counts(self):
        result = plan(TINY, budget=1, quick=True)
        assert all(a.candidate.count == 1 for a in result.analyses)

    def test_unmeetable_target_returns_none(self):
        scenario = tiny_scenario()
        strict = dataclasses.replace(
            scenario,
            planner=dataclasses.replace(
                scenario.planner, budget=1, counts=(1,),
                backends=("dense",), gpus=("tesla t4",),
                max_cost_usd=2000.0,
                target_attainment=1.0),
            slo=dataclasses.replace(
                scenario.slo,
                classes=tuple(
                    dataclasses.replace(c, ttft_slo=1e-9, tbt_slo=1e-9)
                    if c.ttft_slo is not None else c
                    for c in scenario.slo.classes
                ),
            ),
        )
        result = plan(strict, quick=True)
        assert result.best is None
        assert all(not o.passed for o in result.validations)

    def test_to_json_is_strict(self):
        result = plan(TINY, budget=2, quick=True)
        def reject(value):
            raise AssertionError(f"non-strict constant {value}")
        payload = json.loads(
            json.dumps(result.to_json()), parse_constant=reject)
        assert payload["best"] is not None
        assert payload["num_candidates"] == result.num_candidates

    def test_to_text_names_winner(self):
        result = plan(TINY, budget=2, quick=True)
        text = result.to_text()
        assert "cheapest SLO-meeting fleet" in text
        assert result.best.candidate.describe() in text


# ----------------------------------------------------------------------
# cost-normalized attainment on the report
# ----------------------------------------------------------------------
class TestMachineSecondsPerGoodToken:
    def test_reciprocal_of_goodput(self):
        report = tiny_scenario().run()
        assert report.goodput > 0
        assert report.machine_seconds_per_good_token == \
            pytest.approx(1.0 / report.goodput)

    def test_nan_without_good_tokens(self):
        scenario = tiny_scenario()
        hopeless = dataclasses.replace(
            scenario,
            slo=dataclasses.replace(
                scenario.slo,
                classes=tuple(
                    dataclasses.replace(c, ttft_slo=1e-12, tbt_slo=1e-12)
                    for c in scenario.slo.classes
                ),
            ),
        )
        report = hopeless.run()
        assert math.isnan(report.machine_seconds_per_good_token)


# ----------------------------------------------------------------------
# the plan CLI
# ----------------------------------------------------------------------
class TestPlanCLI:
    def run_cli(self, capsys, *argv):
        from repro.experiments.__main__ import main

        try:
            code = main(["plan", *argv])
        except SystemExit as exc:  # argparse usage errors
            code = exc.code
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_found_fleet_exits_zero_with_json(self, capsys):
        code, out, err = self.run_cli(
            capsys, "--scenario", str(TINY), "--budget", "2",
            "--quick", "--json")
        assert code == 0, err
        payload = json.loads(out)  # stdout is exactly one document
        assert payload["best"] is not None
        assert payload["budget"] == 2
        assert "capacity plan" in err  # the table moved to stderr

    def test_table_on_stdout_without_json(self, capsys):
        code, out, err = self.run_cli(
            capsys, "--scenario", str(TINY), "--budget", "1", "--quick")
        assert code == 0
        assert "capacity plan" in out

    def test_usage_errors_exit_two(self, capsys):
        assert self.run_cli(capsys)[0] == 2  # --scenario required
        assert self.run_cli(
            capsys, "--scenario", "no-such-file.json")[0] == 2
        assert self.run_cli(
            capsys, "--scenario", str(TINY), "--budget", "0")[0] == 2
