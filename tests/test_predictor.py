"""Unit tests for the lightweight activation predictor (§IV-C1)."""

import numpy as np
import pytest

from repro.core import (
    ActivationPredictor,
    CorrelationTable,
    PredictionStats,
    PredictorConfig,
    STATE_MAX,
)
from repro.models import get_model
from repro.sparsity import NeuronLayout


@pytest.fixture(scope="session")
def layout(tiny_model):
    return NeuronLayout.build(tiny_model, granularity=4)


@pytest.fixture
def predictor(layout, tiny_trace):
    p = ActivationPredictor(layout, PredictorConfig())
    p.initialize(tiny_trace)
    return p


class TestConfig:
    def test_paper_defaults(self):
        c = PredictorConfig()
        assert c.s_up == 4 and c.s_down == 1
        assert c.lam == 6.0 and c.threshold == 15.0
        assert c.hot_threshold == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictorConfig(s_up=0)
        with pytest.raises(ValueError):
            PredictorConfig(lam=-1)
        with pytest.raises(ValueError):
            PredictorConfig(hot_threshold=16)
        with pytest.raises(ValueError):
            PredictorConfig(
                use_token_prediction=False, use_layer_prediction=False
            )


class TestStateMachine:
    def test_initial_states_follow_prefill_frequency(
        self, predictor, tiny_trace
    ):
        freq = tiny_trace.prefill_frequencies(0)
        states = predictor.states[0]
        # always-on neurons start saturated, never-on start at zero
        assert (states[freq > 0.95] == STATE_MAX).all()
        assert (states[freq < 0.05] == 0).all()

    def test_activation_raises_state_by_s_up(self, predictor, layout):
        predictor.states[0][:] = 5
        actual = np.ones(layout.groups_per_layer, dtype=bool)
        predictor.observe(0, actual)
        assert (predictor.states[0] == 9).all()

    def test_inactivity_decays_by_one(self, predictor, layout):
        predictor.states[0][:] = 5
        predictor.observe(0, np.zeros(layout.groups_per_layer, dtype=bool))
        assert (predictor.states[0] == 4).all()

    def test_state_saturates_at_15(self, predictor, layout):
        predictor.states[0][:] = 14
        predictor.observe(0, np.ones(layout.groups_per_layer, dtype=bool))
        assert (predictor.states[0] == STATE_MAX).all()

    def test_state_floors_at_zero(self, predictor, layout):
        predictor.states[0][:] = 0
        predictor.observe(0, np.zeros(layout.groups_per_layer, dtype=bool))
        assert (predictor.states[0] == 0).all()

    def test_paper_example(self, predictor, layout):
        """Fig. 7a: neuron at state 7 activates -> 11; at 10 idles -> 9."""
        predictor.states[0][:2] = [7, 10]
        actual = np.zeros(layout.groups_per_layer, dtype=bool)
        actual[0] = True
        predictor.observe(0, actual)
        assert predictor.states[0][0] == 11
        assert predictor.states[0][1] == 9

    def test_observe_rejects_wrong_shape(self, predictor):
        with pytest.raises(ValueError):
            predictor.observe(0, np.zeros(3, dtype=bool))


class TestPrediction:
    def test_saturated_neuron_predicted_without_parents(self, predictor):
        predictor.states[1][:] = STATE_MAX
        pred = predictor.predict(1, prev_actual=None)
        assert pred.all()

    def test_cold_neuron_not_predicted(self, predictor):
        predictor.states[1][:] = 0
        prev = np.zeros(predictor.layout.groups_per_layer, dtype=bool)
        assert not predictor.predict(1, prev).any()

    def test_correlated_parents_boost_prediction(self, predictor):
        """s1 + lam*s2 >= T: state 4 alone fails, but both parents firing
        adds 12, crossing the threshold."""
        predictor.states[1][:] = 4
        no_parents = np.zeros(predictor.layout.groups_per_layer, dtype=bool)
        all_parents = np.ones(predictor.layout.groups_per_layer, dtype=bool)
        assert not predictor.predict(1, no_parents).any()
        assert predictor.predict(1, all_parents).all()

    def test_layer_zero_uses_token_prediction_only(self, predictor):
        predictor.states[0][:] = STATE_MAX
        assert predictor.predict(0, None).all()

    def test_token_only_mode(self, layout, tiny_trace):
        p = ActivationPredictor(
            layout, PredictorConfig(use_layer_prediction=False)
        )
        p.initialize(tiny_trace)
        assert p.correlation is None
        p.states[1][:] = STATE_MAX
        assert p.predict(1, np.ones(layout.groups_per_layer, bool)).all()

    def test_layer_only_mode_requires_both_parents(self, layout, tiny_trace):
        p = ActivationPredictor(
            layout, PredictorConfig(use_token_prediction=False)
        )
        p.initialize(tiny_trace)
        prev = np.ones(layout.groups_per_layer, dtype=bool)
        assert p.predict(1, prev).all()
        assert not p.predict(1, ~prev).any()


class TestAccuracy:
    def test_accuracy_on_calibrated_trace(self, predictor, tiny_trace):
        """Replay: accuracy should land near the paper's ~98% claim."""
        for t in tiny_trace.decode_tokens():
            prev = None
            for l in range(tiny_trace.num_layers):
                actual = tiny_trace.active(l, t)
                predicted = predictor.predict(l, prev)
                predictor.observe(l, actual, predicted)
                prev = actual
        assert predictor.stats.accuracy > 0.90
        assert predictor.stats.recall > 0.75
        assert predictor.stats.precision > 0.70

    def test_stats_counters(self):
        stats = PredictionStats()
        stats.update(
            np.array([True, True, False, False]),
            np.array([True, False, True, False]),
        )
        assert stats.true_positive == 1
        assert stats.false_positive == 1
        assert stats.false_negative == 1
        assert stats.true_negative == 1
        assert stats.accuracy == 0.5

    def test_stats_empty_raises(self):
        with pytest.raises(ValueError):
            PredictionStats().accuracy

    def test_perfect_recall_with_no_actuals(self):
        stats = PredictionStats()
        stats.update(np.array([False]), np.array([False]))
        assert stats.recall == 1.0 and stats.precision == 1.0


class TestCorrelationTable:
    def test_estimated_parents_are_informative(self, tiny_trace):
        """The sampled table must predict better than a random table:
        layer-only prediction accuracy with the estimated parents should
        clearly beat the same predictor with shuffled parents."""

        def layer_only_accuracy(table: CorrelationTable) -> float:
            p = ActivationPredictor(
                tiny_trace.layout, PredictorConfig(use_token_prediction=False)
            )
            p.initialize(tiny_trace)
            p.correlation = table
            for t in tiny_trace.decode_tokens():
                prev = None
                for l in range(1, tiny_trace.num_layers):
                    actual = tiny_trace.active(l, t)
                    predicted = p.predict(l, prev)
                    p.stats.update(predicted, actual)
                    prev = actual
            return p.stats.accuracy

        profiled = CorrelationTable.from_profiling(tiny_trace)
        rng = np.random.default_rng(0)
        shuffled = CorrelationTable([
            None if t is None else rng.permutation(t)
            for t in profiled.parents
        ])
        assert (layer_only_accuracy(profiled)
                > layer_only_accuracy(shuffled) + 0.02)

    def test_table_bytes(self, tiny_trace):
        table = CorrelationTable.from_trace(tiny_trace)
        expected = sum(p.size * 2 for p in table.parents if p is not None)
        assert table.table_bytes() == expected

    def test_short_window_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            CorrelationTable.from_trace(tiny_trace, tokens=slice(0, 1))


class TestFootprint:
    def test_llama7b_state_table_232kb(self):
        """§IV-C1: 232 KB for LLaMA-7B, regardless of sim granularity."""
        model = get_model("LLaMA-7B")
        layout = NeuronLayout.build(model, granularity=64)
        predictor = ActivationPredictor(layout)
        assert predictor.state_table_bytes() == 232 * 1024

    def test_under_one_megabyte_for_7b(self):
        model = get_model("LLaMA-7B")
        layout = NeuronLayout.build(model, granularity=64)
        assert ActivationPredictor(layout).state_table_bytes() < 2**20

    def test_overhead_is_sub_millisecond(self, predictor):
        assert predictor.predictor_overhead_seconds(0) < 1e-3

    def test_hot_mask_threshold(self, predictor):
        predictor.states[0][:] = 10
        assert not predictor.hot_mask(0).any()
        predictor.states[0][:] = 11
        assert predictor.hot_mask(0).all()
