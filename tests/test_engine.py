"""Integration tests for the end-to-end Hermes engine."""

import dataclasses

import pytest

from repro.core import HermesConfig, HermesSystem, batch_union_factor
from repro.hardware import Machine, TESLA_T4
from repro.models import get_model

import numpy as np


@pytest.fixture(scope="module")
def hermes_result(machine, tiny_model, tiny_trace):
    return HermesSystem(machine, tiny_model).run(tiny_trace, batch=1)


class TestUnionFactor:
    def test_batch_one_is_identity(self):
        assert batch_union_factor(np.array([0.5, 0.1]), 1) == 1.0

    def test_grows_with_batch(self):
        freq = np.array([0.3, 0.1, 0.05])
        factors = [batch_union_factor(freq, b) for b in (1, 2, 4, 8)]
        assert all(a < b for a, b in zip(factors, factors[1:]))

    def test_saturated_neurons_do_not_inflate(self):
        assert batch_union_factor(np.ones(5), 16) == pytest.approx(1.0)

    def test_bounded_by_inverse_density(self):
        freq = np.full(10, 0.1)
        assert batch_union_factor(freq, 1000) <= 10.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_union_factor(np.array([0.1]), 0)


class TestHermesRun:
    def test_produces_positive_throughput(self, hermes_result):
        assert hermes_result.tokens_per_second > 0

    def test_breakdown_covers_major_categories(self, hermes_result):
        for key in ("fc", "attention", "projection", "prefill", "predictor"):
            assert hermes_result.breakdown.get(key, 0) > 0

    def test_decode_time_close_to_breakdown_sum(self, hermes_result):
        accounted = sum(v for k, v in hermes_result.breakdown.items()
                        if k not in ("prefill",))
        total = (hermes_result.decode_time
                 + hermes_result.breakdown.get("communication", 0))
        assert accounted == pytest.approx(total, rel=0.15)

    def test_predictor_accuracy_reported(self, hermes_result):
        assert hermes_result.metadata["predictor_accuracy"] > 0.85

    def test_rejects_foreign_trace(self, machine, tiny_trace):
        other = get_model("LLaMA-7B")
        with pytest.raises(ValueError):
            HermesSystem(machine, other).run(tiny_trace)

    def test_rejects_bad_batch(self, machine, tiny_model, tiny_trace):
        with pytest.raises(ValueError):
            HermesSystem(machine, tiny_model).run(tiny_trace, batch=0)

    def test_rejects_model_too_big_for_pool(self, tiny_model):
        small = Machine(num_dimms=1)
        tiny_dimm = dataclasses.replace(
            small.dimm,
            geometry=dataclasses.replace(small.dimm.geometry,
                                         capacity_bytes=2**20))
        machine = dataclasses.replace(small, dimm=tiny_dimm)
        with pytest.raises(ValueError, match="DIMM"):
            HermesSystem(machine, tiny_model)

    def test_deterministic(self, machine, tiny_model, tiny_trace):
        a = HermesSystem(machine, tiny_model).run(tiny_trace)
        b = HermesSystem(machine, tiny_model).run(tiny_trace)
        assert a.decode_time == b.decode_time


class TestBatching:
    def test_throughput_improves_with_batch(
        self, machine, tiny_model, tiny_trace
    ):
        system = HermesSystem(machine, tiny_model)
        t1 = system.run(tiny_trace, batch=1).tokens_per_second
        t8 = system.run(tiny_trace, batch=8).tokens_per_second
        assert t8 > 1.5 * t1

    def test_latency_grows_with_batch(self, machine, tiny_model, tiny_trace):
        system = HermesSystem(machine, tiny_model)
        l1 = system.run(tiny_trace, batch=1).decode_latency_per_token
        l16 = system.run(tiny_trace, batch=16).decode_latency_per_token
        assert l16 > l1


class TestConfigurationSpace:
    def test_oracle_not_slower_than_fixed_partition(
        self, machine, tiny_model, tiny_trace
    ):
        fixed = HermesConfig(online_adjustment=False, window_scheduling=False)
        oracle = HermesConfig(
            online_adjustment=False, window_scheduling=False, oracle=True
        )
        t_fixed = HermesSystem(machine, tiny_model, fixed).run(
            tiny_trace).decode_latency_per_token
        t_oracle = HermesSystem(machine, tiny_model, oracle).run(
            tiny_trace).decode_latency_per_token
        assert t_oracle <= t_fixed * 1.05

    def test_all_fig13_variants_run(self, machine, tiny_model, tiny_trace):
        from repro.experiments.fig13_ablation import VARIANTS
        for name, config in VARIANTS.items():
            result = HermesSystem(machine, tiny_model, config).run(tiny_trace)
            assert result.tokens_per_second > 0, name

    def test_more_dimms_never_hurt_much(self, tiny_model, tiny_trace):
        t2 = HermesSystem(Machine(num_dimms=2), tiny_model).run(
            tiny_trace).decode_latency_per_token
        t8 = HermesSystem(Machine(num_dimms=8), tiny_model).run(
            tiny_trace).decode_latency_per_token
        assert t8 <= t2 * 1.10

    def test_faster_gpu_not_slower(self, tiny_model, tiny_trace):
        fast = HermesSystem(Machine(), tiny_model).run(
            tiny_trace).decode_latency_per_token
        slow = HermesSystem(Machine(gpu=TESLA_T4), tiny_model).run(
            tiny_trace).decode_latency_per_token
        assert fast <= slow * 1.05

    def test_window_scheduling_tracks_migrations(
        self, machine, tiny_model, tiny_trace
    ):
        result = HermesSystem(machine, tiny_model).run(tiny_trace)
        assert result.metadata["remap_groups"] >= 0
        assert result.metadata["remap_bytes"] >= 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HermesConfig(window=0)
        with pytest.raises(ValueError):
            HermesConfig(gpu_reserve_bytes=-1)


class TestRealisticScale:
    """Slower sanity checks on a real model geometry."""

    def test_opt13b_headline_shape(self, machine, small_opt_trace):
        model = get_model("OPT-13B")
        result = HermesSystem(machine, model).run(small_opt_trace)
        # paper: 135.64 tokens/s; shape tolerance: same order of magnitude
        assert 30 < result.tokens_per_second < 400
        assert result.metadata["predictor_accuracy"] > 0.90

    def test_opt13b_batch16_scales(self, machine, small_opt_trace):
        model = get_model("OPT-13B")
        system = HermesSystem(machine, model)
        t1 = system.run(small_opt_trace, batch=1).tokens_per_second
        t16 = system.run(small_opt_trace, batch=16).tokens_per_second
        assert 2.0 < t16 / t1 < 16.0
