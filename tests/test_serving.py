"""Tests for the online serving subsystem (workload, metrics, scheduler)."""

from __future__ import annotations

import pytest

from repro.core import HermesSystem
from repro.serving import (
    LengthDistribution,
    MachineExecutor,
    Request,
    RequestRecord,
    ServingConfig,
    ServingSimulator,
    WorkloadConfig,
    generate_workload,
    get_policy,
    percentile,
    time_weighted_mean,
    workload_from_arrivals,
)


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------
class TestWorkload:
    def test_deterministic_for_seed(self):
        config = WorkloadConfig(rate=10.0, num_requests=32)
        a = generate_workload(config, seed=5)
        b = generate_workload(config, seed=5)
        assert [(r.arrival, r.prompt_len, r.output_len) for r in a] \
            == [(r.arrival, r.prompt_len, r.output_len) for r in b]

    def test_seed_changes_workload(self):
        config = WorkloadConfig(rate=10.0, num_requests=32)
        a = generate_workload(config, seed=5)
        b = generate_workload(config, seed=6)
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_poisson_rate_roughly_matches(self):
        config = WorkloadConfig(rate=8.0, num_requests=2000)
        workload = generate_workload(config, seed=1)
        span = workload[-1].arrival
        assert 8.0 == pytest.approx(len(workload) / span, rel=0.15)

    def test_arrivals_sorted_and_ids_unique(self):
        workload = generate_workload(
            WorkloadConfig(arrival="bursty", rate=10.0, num_requests=64),
            seed=2,
        )
        arrivals = [r.arrival for r in workload]
        assert arrivals == sorted(arrivals)
        assert len({r.req_id for r in workload}) == len(workload)

    def test_bursty_preserves_mean_rate(self):
        config = WorkloadConfig(
            arrival="bursty",
            rate=8.0,
            num_requests=4000,
            burst_factor=4.0,
            burst_fraction=0.2,
        )
        workload = generate_workload(config, seed=3)
        realised = len(workload) / workload[-1].arrival
        assert realised == pytest.approx(8.0, rel=0.25)

    def test_bursty_is_burstier_than_poisson(self):
        """Squared coefficient of variation of inter-arrival gaps > 1."""
        import numpy as np
        config = WorkloadConfig(
            arrival="bursty",
            rate=10.0,
            num_requests=4000,
            burst_factor=4.0,
            burst_fraction=0.2,
        )
        gaps = np.diff([r.arrival for r in generate_workload(config, seed=4)])
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.2

    def test_length_distributions(self):
        import numpy as np
        rng = np.random.default_rng(0)
        fixed = LengthDistribution(mean=77)
        assert all(fixed.sample(rng) == 77 for _ in range(5))
        uniform = LengthDistribution(kind="uniform", low=10, high=20)
        draws = [uniform.sample(rng) for _ in range(200)]
        assert min(draws) >= 10 and max(draws) <= 20
        heavy = LengthDistribution(
            kind="lognormal", mean=100, sigma=0.5, low=1, high=4096
        )
        draws = [heavy.sample(rng) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(100, rel=0.1)

    def test_trace_driven_workload(self):
        workload = workload_from_arrivals([0.0, 0.5, 2.0], 64, [8, 16, 24])
        assert [r.output_len for r in workload] == [8, 16, 24]
        assert all(r.prompt_len == 64 for r in workload)
        with pytest.raises(ValueError):
            workload_from_arrivals([1.0, 0.5], 64, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(rate=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(arrival="sinusoid")
        with pytest.raises(ValueError):
            # quiet-state rate would go negative
            WorkloadConfig(arrival="bursty", burst_factor=6.0,
                           burst_fraction=0.2)
        with pytest.raises(ValueError):
            LengthDistribution(kind="uniform")
        with pytest.raises(ValueError):
            Request(req_id=0, arrival=0.0, prompt_len=0, output_len=4)


# ----------------------------------------------------------------------
# metric math
# ----------------------------------------------------------------------
class TestPercentile:
    def test_hand_computed_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile(values, 25) == pytest.approx(1.75)
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_order_independent(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7.5], 99) == 7.5

    def test_p99_hand_computed(self):
        values = list(map(float, range(1, 101)))  # 1..100
        # rank = 99 * 0.99 = 98.01 -> 99 + 0.01 * (100 - 99)
        assert percentile(values, 99) == pytest.approx(99.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_time_weighted_mean_hand_computed(self):
        # 0 until t=1, then 2 until t=3, then 4 until horizon 4
        samples = [(1.0, 2.0), (3.0, 4.0)]
        assert time_weighted_mean(samples, 4.0) == pytest.approx(
            (0 * 1 + 2 * 2 + 4 * 1) / 4.0
        )


class TestRequestRecord:
    def test_latency_accessors(self):
        request = Request(req_id=0, arrival=1.0, prompt_len=8, output_len=3)
        record = RequestRecord(
            request=request, prefill_start=1.5, token_times=[2.0, 2.25, 2.75]
        )
        assert record.finished
        assert record.queue_wait == pytest.approx(0.5)
        assert record.ttft == pytest.approx(1.0)
        assert record.e2e_latency == pytest.approx(1.75)
        assert record.tbts == pytest.approx([0.25, 0.5])


# ----------------------------------------------------------------------
# policies + executor
# ----------------------------------------------------------------------
class TestPolicies:
    def test_registry(self):
        for name in ("fcfs", "fcfs-nobatch", "sjf", "hermes-union"):
            assert get_policy(name).name == name
        with pytest.raises(KeyError):
            get_policy("priority-lottery")

    def test_sjf_orders_by_output_len(self):
        queue = [Request(req_id=i, arrival=float(i), prompt_len=8,
                         output_len=n)
                 for i, n in enumerate([30, 10, 20])]
        ordered = get_policy("sjf").order(queue)
        assert [r.output_len for r in ordered] == [10, 20, 30]

    def test_fcfs_orders_by_arrival(self):
        queue = [Request(req_id=i, arrival=a, prompt_len=8, output_len=8)
                 for i, a in enumerate([2.0, 0.5, 1.0])]
        ordered = get_policy("fcfs").order(queue)
        assert [r.arrival for r in ordered] == [0.5, 1.0, 2.0]

    def test_empty_queue_round_is_noop(self):
        """Regression: every policy must tolerate an empty queue round."""
        for name in ("fcfs", "fcfs-nobatch", "sjf", "hermes-union"):
            assert get_policy(name).order([]) == []

    def test_sjf_equal_output_lengths_tiebreak_deterministic(self):
        """Regression: SJF ties on output_len fall back to (arrival,
        req_id) — a stable total order, not dict/insertion order."""
        queue = [Request(req_id=i, arrival=a, prompt_len=8, output_len=16)
                 for i, a in enumerate([1.0, 0.25, 0.25, 0.5])]
        ordered = get_policy("sjf").order(queue)
        assert [r.req_id for r in ordered] == [1, 2, 3, 0]
        # shuffled input produces the identical order
        assert get_policy("sjf").order(queue[::-1]) == ordered


class TestUnionCapEdgeCases:
    @pytest.fixture(scope="class")
    def executor(self, machine, tiny_model, tiny_trace):
        return MachineExecutor(machine, tiny_model, trace=tiny_trace)

    def test_cap_at_single_request_union_admits_batch_one(self, executor):
        """Regression: union_cap == the single-request union factor (1.0)
        must still admit exactly one request, never zero."""
        from repro.serving import HermesUnionPolicy
        policy = HermesUnionPolicy(union_cap=1.0)
        assert policy.batch_limit(executor, 16) == 1
        # caps numerically below 1.0 (bypassing the constructor check)
        # keep the batch-1 floor rather than wedging the machine
        assert executor.max_union_batch(0.5, 16) == 1

    def test_cap_below_one_rejected_by_constructor(self):
        from repro.serving import HermesUnionPolicy
        with pytest.raises(ValueError):
            HermesUnionPolicy(union_cap=0.99)

    def test_limit_one_short_circuits(self, executor):
        assert executor.max_union_batch(10.0, 1) == 1
        with pytest.raises(ValueError):
            executor.max_union_batch(10.0, 0)

    def test_union_capped_serving_run_completes(self, tiny_trace):
        """A union cap of exactly 1.0 degrades to no-batching service
        but must still drain the whole workload deterministically."""
        from repro.serving import HermesUnionPolicy
        workload = generate_workload(
            WorkloadConfig(rate=500.0, num_requests=12,
                           prompt_lens=LengthDistribution(mean=16),
                           output_lens=LengthDistribution(mean=6)),
            seed=5)
        reports = [
            ServingSimulator("tiny-test", HermesUnionPolicy(union_cap=1.0),
                             ServingConfig(max_batch=8),
                             trace=tiny_trace).run(workload)
            for _ in range(2)
        ]
        assert all(len(r.completed) == 12 for r in reports)
        assert reports[0].makespan == reports[1].makespan
        assert reports[0].mean_batch_size <= 1.0 + 1e-9

    def test_zero_batch_limit_policy_is_clamped(self, tiny_trace):
        """Regression: a (buggy) policy returning batch_limit 0 used to
        strand the queue forever; the simulator clamps it to 1 — and
        surfaces the repair as a warning plus a report counter instead
        of silently fixing the policy."""
        from repro.serving import BatchingPolicy

        class ZeroLimit(BatchingPolicy):
            name = "zero-limit"

            def batch_limit(self, executor, max_batch):
                return 0

        workload = generate_workload(
            WorkloadConfig(rate=500.0, num_requests=6,
                           prompt_lens=LengthDistribution(mean=16),
                           output_lens=LengthDistribution(mean=4)),
            seed=6)
        with pytest.warns(RuntimeWarning, match="clamped to 1"):
            report = ServingSimulator("tiny-test", ZeroLimit(),
                                      ServingConfig(max_batch=8),
                                      trace=tiny_trace).run(workload)
        assert len(report.completed) == 6
        assert report.batch_limit_clamps == 1

    def test_clamp_counted_once_per_machine(self, tiny_trace):
        """The limit is constant per machine, so the count is exact —
        one note per affected machine, not one per scheduling round."""
        from repro.serving import BatchingPolicy

        class NegativeLimit(BatchingPolicy):
            name = "negative-limit"

            def batch_limit(self, executor, max_batch):
                return -3

        workload = generate_workload(
            WorkloadConfig(rate=500.0, num_requests=8,
                           prompt_lens=LengthDistribution(mean=16),
                           output_lens=LengthDistribution(mean=4)),
            seed=6)
        with pytest.warns(RuntimeWarning, match="negative-limit"):
            report = ServingSimulator(
                "tiny-test", NegativeLimit(),
                ServingConfig(max_batch=8, num_machines=2),
                trace=tiny_trace).run(workload)
        assert len(report.completed) == 8
        assert report.batch_limit_clamps == 2

    def test_healthy_policies_never_clamp(self, tiny_trace):
        workload = generate_workload(
            WorkloadConfig(rate=500.0, num_requests=6,
                           prompt_lens=LengthDistribution(mean=16),
                           output_lens=LengthDistribution(mean=4)),
            seed=6)
        report = ServingSimulator("tiny-test", "fcfs",
                                  ServingConfig(max_batch=8),
                                  trace=tiny_trace).run(workload)
        assert report.batch_limit_clamps == 0


class TestExecutor:
    @pytest.fixture(scope="class")
    def executor(self, machine, tiny_model, tiny_trace):
        return MachineExecutor(machine, tiny_model, trace=tiny_trace)

    def test_prefill_grows_with_prompt(self, executor):
        assert executor.prefill_seconds(256) > executor.prefill_seconds(16)

    def test_decode_step_positive_and_stateful(self, executor):
        before = executor.session.steps_done
        cost = executor.decode_step(batch=2, context=40)
        assert cost.seconds > 0
        assert cost.gpu_busy > 0 and cost.dimm_busy >= 0
        assert executor.session.steps_done == before + 1

    def test_session_wraps_past_trace_end(
        self, machine, tiny_model, tiny_trace
    ):
        executor = MachineExecutor(machine, tiny_model, trace=tiny_trace)
        for _ in range(tiny_trace.n_decode_tokens + 5):
            executor.decode_step(batch=1, context=33)
        assert executor.session.steps_done > tiny_trace.n_decode_tokens

    def test_union_batch_cap_monotone(self, executor):
        loose = executor.max_union_batch(10.0, 16)
        tight = executor.max_union_batch(1.0, 16)
        assert loose == 16  # tiny-test unions stay below 1.3
        assert tight == 1
        assert executor.max_union_batch(1.2, 16) <= loose


# ----------------------------------------------------------------------
# end-to-end serving simulation
# ----------------------------------------------------------------------
SATURATED = WorkloadConfig(
    rate=2000.0, num_requests=40,
    prompt_lens=LengthDistribution(mean=32),
    output_lens=LengthDistribution(kind="uniform", mean=24, low=8, high=40))


def _simulate(tiny_trace, policy, **kwargs):
    simulator = ServingSimulator(
        "tiny-test",
        policy,
        ServingConfig(**{"max_batch": 8, **kwargs}),
        trace=tiny_trace,
    )
    return simulator.run(generate_workload(SATURATED, seed=3))


class TestServingSimulator:
    @pytest.fixture(scope="class")
    def fcfs_report(self, tiny_trace):
        return _simulate(tiny_trace, "fcfs")

    def test_all_requests_complete_with_full_output(self, fcfs_report):
        assert len(fcfs_report.completed) == 40
        for record in fcfs_report.records:
            assert len(record.token_times) == record.request.output_len

    def test_timestamps_causal(self, fcfs_report):
        for record in fcfs_report.completed:
            assert record.prefill_start >= record.request.arrival
            assert record.first_token_time > record.prefill_start
            assert record.token_times == sorted(record.token_times)

    def test_continuous_batching_beats_no_batching_at_saturation(
        self, tiny_trace
    ):
        batched = _simulate(tiny_trace, "fcfs")
        serial = _simulate(tiny_trace, "fcfs-nobatch")
        assert batched.tokens_per_second > 2.0 * serial.tokens_per_second
        assert batched.e2e_percentile(99) < serial.e2e_percentile(99)
        assert serial.mean_batch_size <= 1.0 + 1e-9

    def test_deterministic(self, tiny_trace):
        a = _simulate(tiny_trace, "fcfs")
        b = _simulate(tiny_trace, "fcfs")
        assert a.makespan == b.makespan
        assert a.ttft_percentile(99) == b.ttft_percentile(99)

    def test_queue_builds_at_saturation(self, fcfs_report):
        assert fcfs_report.max_queue_depth >= 8
        assert fcfs_report.mean_queue_depth > 0

    def test_batch_cap_respected(self, fcfs_report):
        assert fcfs_report.mean_batch_size <= 8.0
        assert max(v for _, v in fcfs_report.batch_samples) <= 8.0

    def test_utilization_fractions_sane(self, fcfs_report):
        assert 0.0 < fcfs_report.gpu_utilization <= 1.0
        assert 0.0 <= fcfs_report.dimm_utilization <= 1.0

    def test_two_machines_scale_throughput(self, tiny_trace):
        one = _simulate(tiny_trace, "fcfs")
        two = _simulate(tiny_trace, "fcfs", num_machines=2)
        assert two.tokens_per_second > 1.4 * one.tokens_per_second
        machines = {r.machine for r in two.completed}
        assert machines == {0, 1}

    def test_simultaneous_burst_on_shared_queue(self, tiny_trace):
        """Machines admitting concurrently from one queue must not collide.

        Regression: every request arrives at ~t=0, so multiple machines sit
        in admission over the same shared queue; a stale policy-order
        snapshot held across a prefill yield used to double-admit.
        """
        burst = WorkloadConfig(
            rate=1e5,
            num_requests=48,
            prompt_lens=LengthDistribution(mean=16),
            output_lens=LengthDistribution(mean=8),
        )
        workload = generate_workload(burst, seed=4)
        report = ServingSimulator(
            "tiny-test", "fcfs",
            ServingConfig(max_batch=8, num_machines=3),
            trace=tiny_trace).run(workload)
        assert len(report.completed) == 48
        assert {r.machine for r in report.completed} == {0, 1, 2}

    def test_tbt_tracks_engine_step_latency(
        self, tiny_trace, machine, tiny_model
    ):
        """Median TBT should match the engine's per-step decode latency."""
        report = _simulate(tiny_trace, "fcfs")
        single = HermesSystem(machine, tiny_model).run(tiny_trace, batch=4)
        engine_step = single.decode_latency_per_token
        assert report.tbt_percentile(50) == pytest.approx(
            engine_step, rel=0.75
        )

    def test_underload_leaves_queue_empty(self, tiny_trace):
        calm = WorkloadConfig(
            rate=5.0,
            num_requests=10,
            prompt_lens=LengthDistribution(mean=16),
            output_lens=LengthDistribution(mean=8),
        )
        simulator = ServingSimulator(
            "tiny-test", "fcfs", ServingConfig(max_batch=8), trace=tiny_trace
        )
        report = simulator.run(generate_workload(calm, seed=1))
        assert len(report.completed) == 10
        assert report.mean_queue_depth < 0.5

    def test_rejects_empty_workload(self, tiny_trace):
        simulator = ServingSimulator("tiny-test", trace=tiny_trace)
        with pytest.raises(ValueError):
            simulator.run([])
