"""Unit tests for the NDP core models (GEMV unit, activation unit)."""

import pytest

from repro.ndp import ActivationUnit, GEMVUnit, NDPCore


class TestGEMVUnit:
    def test_default_is_hundreds_of_gflops(self):
        """§I: NDP-DIMMs provide hundreds of GFLOPS; Table II's unit
        sustains 256 GFLOP/s."""
        unit = GEMVUnit()
        assert unit.macs_per_second == pytest.approx(128e9)
        assert unit.flops == pytest.approx(256e9)

    def test_compute_time_scales_with_batch(self):
        unit = GEMVUnit()
        b = 2**20
        assert unit.compute_time(b, batch=4) == pytest.approx(
            4 * unit.compute_time(b, batch=1)
        )

    def test_scaled_multipliers(self):
        unit = GEMVUnit().scaled(512)
        assert unit.multipliers == 512
        assert unit.macs_per_second == pytest.approx(256e9)

    def test_zero_bytes(self):
        assert GEMVUnit().compute_time(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GEMVUnit(multipliers=0)
        with pytest.raises(ValueError):
            GEMVUnit(bit_serial_cycles=0)
        with pytest.raises(ValueError):
            GEMVUnit().compute_time(-1)
        with pytest.raises(ValueError):
            GEMVUnit().compute_time(1, batch=0)


class TestActivationUnit:
    def test_relu_scales_with_lanes(self):
        unit = ActivationUnit()
        assert unit.relu_time(256) == pytest.approx(1e-9)
        assert unit.relu_time(512) == pytest.approx(2e-9)

    def test_softmax_longer_than_relu(self):
        unit = ActivationUnit()
        assert unit.softmax_time(1024) > unit.relu_time(1024)

    def test_softmax_zero(self):
        assert ActivationUnit().softmax_time(0) == 0.0

    def test_attention_softmax_scales_with_heads(self):
        unit = ActivationUnit()
        assert unit.attention_softmax_time(128, 8) == pytest.approx(
            2 * unit.attention_softmax_time(128, 4)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ActivationUnit(lanes=0)
        with pytest.raises(ValueError):
            ActivationUnit().relu_time(-1)
        with pytest.raises(ValueError):
            ActivationUnit().attention_softmax_time(1, 0)


class TestNDPCore:
    def test_memory_bound_at_batch_one(self):
        """Table II config: 102 GB/s stream vs 256 GFLOP/s -> batch-1 GEMV
        is stream-bound."""
        core = NDPCore()
        b = 2**20
        bw = 102.4e9
        assert core.gemv_time(b, bw, batch=1) == pytest.approx(b / bw)

    def test_compute_bound_past_batch_two(self):
        """§V-B2: the NDP core handles batch 2 but saturates beyond."""
        core = NDPCore()
        b = 2**20
        bw = 102.4e9
        t2 = core.gemv_time(b, bw, batch=2)
        t4 = core.gemv_time(b, bw, batch=4)
        assert t4 == pytest.approx(2 * t2, rel=0.3)
        assert t4 == pytest.approx(core.gemv.compute_time(b, 4))

    def test_attention_includes_softmax_tail(self):
        core = NDPCore()
        kv = 2**20
        bw = 102.4e9
        assert core.attention_time(kv, bw, context_len=128, num_heads=8) \
            > core.gemv_time(kv, bw)

    def test_zero_kv_attention_free(self):
        assert NDPCore().attention_time(0, 1e9, 10, 4) == 0.0

    def test_merge_time_small(self):
        assert NDPCore().merge_time(8192) < 1e-6

    def test_with_multipliers_roundtrip(self):
        core = NDPCore().with_multipliers(32)
        assert core.gemv.multipliers == 32

    def test_validation(self):
        core = NDPCore()
        with pytest.raises(ValueError):
            core.gemv_time(1, 0)
        with pytest.raises(ValueError):
            core.gemv_time(-1, 1e9)
        with pytest.raises(ValueError):
            core.merge_time(-1)
        with pytest.raises(ValueError):
            NDPCore(area_mm2=0)

    def test_area_matches_table2(self):
        assert NDPCore().area_mm2 == pytest.approx(1.23)
