"""Property-based equivalence guarantees for the cluster layer.

Two invariants the refactor to a machine-count-agnostic serving loop
must preserve, checked over hypothesis-generated workload space:

* a 1-machine cluster behind the round-robin router is *exactly* the
  single-machine :class:`~repro.serving.ServingSimulator` — same event
  trace, bit-identical metrics — for every policy and arrival process;
* parallel scenario grids (``--jobs 2``) assemble byte-identical
  experiment payloads to serial runs.
"""

from __future__ import annotations

import dataclasses
import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ClusterSimulator
from repro.experiments import cluster_eval
from repro.models import get_model
from repro.serving import (
    LengthDistribution,
    ServingConfig,
    ServingSimulator,
    WorkloadConfig,
    generate_workload,
)
from repro.sparsity import TraceConfig, generate_trace

#: module-level trace: hypothesis examples must not rebuild it
_TRACE = None


def _trace():
    global _TRACE
    if _TRACE is None:
        _TRACE = generate_trace(
            get_model("tiny-test"),
            TraceConfig(prompt_len=32, decode_len=64, granularity=4),
            seed=11,
        )
    return _TRACE


@st.composite
def workload_cases(draw):
    arrival = draw(st.sampled_from(["poisson", "bursty"]))
    kwargs = {}
    if arrival == "bursty":
        kwargs = dict(burst_factor=3.0, burst_fraction=0.25)
    config = WorkloadConfig(
        arrival=arrival,
        rate=draw(st.floats(min_value=20.0, max_value=20000.0)),
        num_requests=draw(st.integers(min_value=2, max_value=16)),
        prompt_lens=LengthDistribution(
            mean=draw(st.integers(min_value=8, max_value=64))),
        output_lens=LengthDistribution(
            kind="uniform",
            low=draw(st.integers(min_value=1, max_value=8)),
            high=draw(st.integers(min_value=8, max_value=24))),
        **kwargs)
    seed = draw(st.integers(min_value=0, max_value=2**16))
    policy = draw(
        st.sampled_from(["fcfs", "fcfs-nobatch", "sjf", "hermes-union"])
    )
    max_batch = draw(st.sampled_from([1, 4, 8]))
    return config, seed, policy, max_batch


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(workload_cases())
def test_one_machine_cluster_is_exactly_the_serving_simulator(case):
    config, seed, policy, max_batch = case
    workload = generate_workload(config, seed=seed)
    base = ServingSimulator(
        "tiny-test", policy, ServingConfig(max_batch=max_batch),
        trace=_trace()).run(workload)
    clustered = ClusterSimulator(
        "tiny-test", policy,
        ClusterConfig(max_batch=max_batch, num_machines=1,
                      router="round-robin"),
        trace=_trace()).run(workload)
    # identical event trace...
    assert clustered.makespan == base.makespan
    assert [(r.prefill_start, r.token_times, r.machine)
            for r in clustered.records] == \
        [(r.prefill_start, r.token_times, r.machine)
         for r in base.records]
    assert clustered.queue_samples == base.queue_samples
    assert clustered.batch_samples == base.batch_samples
    assert clustered.machine_gpu_busy == base.machine_gpu_busy
    assert clustered.machine_dimm_busy == base.machine_dimm_busy
    # ...hence identical cluster-level metrics, bit for bit
    assert clustered.tokens_per_second == base.tokens_per_second
    assert clustered.mean_batch_size == base.mean_batch_size
    if base.completed:
        for p in (50.0, 99.0):
            assert clustered.ttft_percentile(p) == base.ttft_percentile(p)
            assert clustered.e2e_percentile(p) == base.e2e_percentile(p)


def test_cluster_grid_jobs2_matches_serial():
    """--jobs 2 must produce a byte-identical ExperimentResult payload
    to --jobs 1 on the quick cluster scenario grid."""
    serial = cluster_eval.run(quick=True, jobs=1)
    parallel = cluster_eval.run(quick=True, jobs=2)
    assert json.dumps(dataclasses.asdict(serial), sort_keys=True) == \
        json.dumps(dataclasses.asdict(parallel), sort_keys=True)
