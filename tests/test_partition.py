"""Unit tests for the offline neuron-mapping solver (§IV-B, Eq. 1-7)."""

import numpy as np
import pytest

from repro.core import PartitionCosts, assign_dimms, solve_partition
from repro.sparsity import NeuronLayout, power_law_frequencies


@pytest.fixture(scope="session")
def layout(tiny_model):
    return NeuronLayout.build(tiny_model, granularity=4)


@pytest.fixture
def frequencies(layout):
    rng = np.random.default_rng(2)
    return [
        power_law_frequencies(layout.groups_per_layer, 0.25, rng=rng)
        for _ in range(layout.model.num_layers)
    ]


def costs_for(layout, *, gpu_fraction=0.3, num_dimms=4) -> PartitionCosts:
    total = layout.sparse_bytes_per_layer() * layout.model.num_layers
    return PartitionCosts(
        gpu_seconds_per_byte=1.0 / 750e9,
        dimm_seconds_per_byte=1.0 / 102e9,
        sync_seconds=15e-6,
        num_dimms=num_dimms,
        gpu_budget_bytes=int(total * gpu_fraction),
        dimm_capacity_bytes=total,  # ample capacity per DIMM
    )


class TestCostValidation:
    def test_rejects_bad_rates(self, layout):
        with pytest.raises(ValueError):
            PartitionCosts(0, 1, 0, 1, 1, 1)
        with pytest.raises(ValueError):
            PartitionCosts(1, 1, -1, 1, 1, 1)
        with pytest.raises(ValueError):
            PartitionCosts(1, 1, 0, 0, 1, 1)


class TestGreedy:
    def test_respects_gpu_budget(self, layout, frequencies):
        costs = costs_for(layout)
        partition = solve_partition(frequencies, layout, costs)
        assert partition.gpu_bytes(layout) <= costs.gpu_budget_bytes

    def test_stops_at_the_balance_target(self, layout, frequencies):
        """Greedy is water-filling: it takes hot mass up to the
        GPU/DIMM-pool balance share, not to raw capacity."""
        from repro.core.partition import gpu_mass_share
        costs = costs_for(layout, gpu_fraction=0.9)  # capacity not binding
        partition = solve_partition(frequencies, layout, costs)
        share = gpu_mass_share(costs)
        for l, mask in enumerate(partition.hot_masks):
            mass = frequencies[l] * layout.group_bytes
            taken = mass[mask].sum() / mass.sum()
            assert taken == pytest.approx(share, abs=0.1)

    def test_picks_hottest_groups(self, layout, frequencies):
        costs = costs_for(layout, gpu_fraction=0.2)
        partition = solve_partition(frequencies, layout, costs)
        # mean frequency of selected groups must beat the population mean
        sel, unsel = [], []
        for l, mask in enumerate(partition.hot_masks):
            sel.extend(frequencies[l][mask])
            unsel.extend(frequencies[l][~mask])
        assert np.mean(sel) > 2 * np.mean(unsel)

    def test_zero_budget_selects_nothing(self, layout, frequencies):
        costs = costs_for(layout, gpu_fraction=0.0)
        partition = solve_partition(frequencies, layout, costs)
        assert partition.gpu_bytes(layout) == 0

    def test_every_group_assigned_to_a_dimm(self, layout, frequencies):
        costs = costs_for(layout)
        partition = solve_partition(frequencies, layout, costs)
        for assignment in partition.dimm_of:
            assert assignment.min() >= 0
            assert assignment.max() < costs.num_dimms


class TestRandom:
    def test_random_respects_budget(self, layout, frequencies):
        costs = costs_for(layout)
        partition = solve_partition(
            frequencies, layout, costs, strategy="random"
        )
        assert partition.gpu_bytes(layout) <= costs.gpu_budget_bytes

    def test_random_hot_set_is_colder_than_greedy(self, layout, frequencies):
        costs = costs_for(layout, gpu_fraction=0.2)
        greedy = solve_partition(frequencies, layout, costs)
        random_p = solve_partition(
            frequencies, layout, costs, strategy="random"
        )

        def hot_mass(partition):
            return sum(float(frequencies[l][m].sum())
                       for l, m in enumerate(partition.hot_masks))

        assert hot_mass(greedy) > hot_mass(random_p)

    def test_seed_determinism(self, layout, frequencies):
        costs = costs_for(layout)
        a = solve_partition(
            frequencies, layout, costs, strategy="random", seed=9
        )
        b = solve_partition(
            frequencies, layout, costs, strategy="random", seed=9
        )
        for ma, mb in zip(a.hot_masks, b.hot_masks):
            assert np.array_equal(ma, mb)


class TestLP:
    def test_lp_respects_budget(self, layout, frequencies):
        costs = costs_for(layout)
        partition = solve_partition(frequencies, layout, costs, strategy="ilp")
        assert partition.gpu_bytes(layout) <= costs.gpu_budget_bytes

    def test_lp_objective_no_worse_than_greedy(self, layout, frequencies):
        """Evaluate Eq. 1 for both solutions; LP must be competitive."""
        costs = costs_for(layout, gpu_fraction=0.15)

        def objective(partition):
            total = 0.0
            for l, freq in enumerate(frequencies):
                load = freq * layout.group_bytes
                gpu = load[partition.hot_masks[l]].sum() \
                    * costs.gpu_seconds_per_byte + 2 * costs.sync_seconds
                dimm_loads = np.zeros(costs.num_dimms)
                cold = ~partition.hot_masks[l]
                np.add.at(
                    dimm_loads,
                    partition.dimm_of[l][cold],
                    load[cold] * costs.dimm_seconds_per_byte,
                )
                total += max(gpu, dimm_loads.max())
            return total

        greedy = solve_partition(frequencies, layout, costs)
        lp = solve_partition(frequencies, layout, costs, strategy="ilp")
        assert objective(lp) <= objective(greedy) * 1.10

    def test_unknown_strategy(self, layout, frequencies):
        with pytest.raises(ValueError):
            solve_partition(
                frequencies, layout, costs_for(layout), strategy="magic"
            )


class TestAssignDimms:
    def test_balanced_beats_round_robin_on_expected_load(
        self, layout, frequencies
    ):
        costs = costs_for(layout)
        hot = [
            np.zeros(layout.groups_per_layer, dtype=bool) for _ in frequencies
        ]
        balanced = assign_dimms(frequencies, hot, layout, costs, balanced=True)
        naive = assign_dimms(frequencies, hot, layout, costs, balanced=False)

        def imbalance(assignment):
            worst = 0.0
            for l, freq in enumerate(frequencies):
                load = freq * layout.group_bytes
                loads = np.zeros(costs.num_dimms)
                np.add.at(loads, assignment[l], load)
                worst = max(worst, loads.max() / loads.mean())
            return worst

        assert imbalance(balanced) <= imbalance(naive)

    def test_capacity_enforced(self, layout, frequencies):
        total = layout.sparse_bytes_per_layer() * layout.model.num_layers
        costs = PartitionCosts(
            gpu_seconds_per_byte=1e-12, dimm_seconds_per_byte=1e-11,
            sync_seconds=0.0, num_dimms=2, gpu_budget_bytes=0,
            dimm_capacity_bytes=total // 8)  # far too small
        hot = [
            np.zeros(layout.groups_per_layer, dtype=bool) for _ in frequencies
        ]
        with pytest.raises(ValueError, match="too small"):
            assign_dimms(frequencies, hot, layout, costs)

    def test_validate_catches_budget_violation(self, layout, frequencies):
        costs = costs_for(layout)
        partition = solve_partition(frequencies, layout, costs)
        partition.hot_masks[0][:] = True  # corrupt
        tight = costs_for(layout, gpu_fraction=0.01)
        with pytest.raises(ValueError):
            partition.validate(layout, tight)


class TestInputValidation:
    def test_wrong_layer_count(self, layout, frequencies):
        with pytest.raises(ValueError):
            solve_partition(frequencies[:-1], layout, costs_for(layout))

    def test_wrong_shape(self, layout, frequencies):
        bad = list(frequencies)
        bad[0] = bad[0][:-1]
        with pytest.raises(ValueError):
            solve_partition(bad, layout, costs_for(layout))

    def test_out_of_range_frequency(self, layout, frequencies):
        bad = [f.copy() for f in frequencies]
        bad[0][0] = 1.5
        with pytest.raises(ValueError):
            solve_partition(bad, layout, costs_for(layout))
