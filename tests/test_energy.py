"""Unit tests for the energy extension (tokens per joule)."""

import dataclasses

import pytest

from repro.core import HermesSystem
from repro.baselines import DejaVu, FlexGen
from repro.hardware import (
    EnergyModel,
    decode_energy_per_token,
    tokens_per_joule,
)
from repro.models import get_model


@pytest.fixture(scope="module")
def runs(machine, small_opt_trace):
    model = get_model("OPT-13B")
    return {
        "hermes": HermesSystem(machine, model).run(small_opt_trace),
        "dejavu": DejaVu(machine, model).run(small_opt_trace),
        "flexgen": FlexGen(machine, model).run(small_opt_trace),
    }


class TestEnergyModel:
    def test_dimm_link_energy_matches_table2(self):
        assert EnergyModel().dimm_link_pj_per_bit == pytest.approx(1.17)

    def test_transfer_energy_linear(self):
        e = EnergyModel()
        one = e.transfer_energy(2**20, 5.0)
        two = e.transfer_energy(2**21, 5.0)
        assert two == pytest.approx(2 * one)

    def test_compute_energy(self):
        e = EnergyModel()
        assert e.compute_energy(1e12, 0.5) == pytest.approx(0.5)

    def test_validation(self):
        e = EnergyModel()
        with pytest.raises(ValueError):
            e.transfer_energy(-1, 5.0)
        with pytest.raises(ValueError):
            e.compute_energy(-1, 0.5)
        with pytest.raises(ValueError):
            dataclasses.replace(e, pcie_pj_per_bit=0)


class TestSystemEnergy:
    def test_positive_energy(self, runs, machine):
        model = get_model("OPT-13B")
        for result in runs.values():
            assert decode_energy_per_token(result, model, machine) > 0

    def test_hermes_more_efficient_than_offloaders(self, runs, machine):
        """PCIe weight traffic costs both time and energy; Hermes avoids
        it, so it must dominate on tokens/J as well."""
        model = get_model("OPT-13B")
        hermes = tokens_per_joule(runs["hermes"], model, machine)
        for name in ("dejavu", "flexgen"):
            assert hermes > tokens_per_joule(runs[name], model, machine)

    def test_static_power_penalises_slow_systems(self, runs, machine):
        """Wall-time static draw dominates very slow systems."""
        model = get_model("OPT-13B")
        slow = decode_energy_per_token(runs["flexgen"], model, machine)
        fast = decode_energy_per_token(runs["hermes"], model, machine)
        assert slow > 5 * fast
