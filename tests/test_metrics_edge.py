"""Edge-case and property coverage for the serving metric primitives.

``percentile`` is hand-rolled (so report arithmetic stays
hand-checkable); these tests pin it against ``numpy.percentile``'s
default linear-interpolation method over hypothesis-generated samples,
plus the boundary cases the reports actually hit: single samples,
p = 0/100, empty aggregates (``percentile_or_nan``), and
``time_weighted_mean`` samples landing on or after the horizon.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serving import (
    RequestRecord,
    percentile,
    percentile_or_nan,
    time_weighted_mean,
)
from repro.serving.workload import Request


class TestPercentileEdges:
    def test_single_sample_any_p(self):
        for p in (0.0, 37.5, 50.0, 100.0):
            assert percentile([4.25], p) == 4.25

    def test_p0_and_p100_are_extremes(self):
        values = [9.0, -3.0, 4.0, 7.5]
        assert percentile(values, 0) == -3.0
        assert percentile(values, 100) == 9.0

    def test_input_not_mutated(self):
        values = [3.0, 1.0, 2.0]
        percentile(values, 50)
        assert values == [3.0, 1.0, 2.0]

    def test_empty_raises_but_or_nan_does_not(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        assert math.isnan(percentile_or_nan([], 50))

    def test_or_nan_still_validates_p(self):
        with pytest.raises(ValueError):
            percentile_or_nan([], 150)
        with pytest.raises(ValueError):
            percentile_or_nan([1.0], -1)

    def test_or_nan_delegates_when_nonempty(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile_or_nan(values, 25) == percentile(values, 25)

    @given(
        st.lists(
            st.floats(
                min_value=-1e9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_matches_numpy_linear(self, values, p):
        want = float(np.percentile(np.asarray(values), p))
        assert percentile(values, p) == pytest.approx(
            want, rel=1e-9, abs=1e-9
        )


class TestTimeWeightedMeanEdges:
    def test_empty_signal_is_zero(self):
        assert time_weighted_mean([], 10.0) == 0.0

    def test_single_sample_holds_to_horizon(self):
        assert time_weighted_mean([(2.0, 4.0)], 10.0) == pytest.approx(
            4.0 * 8.0 / 10.0
        )

    def test_sample_at_horizon_contributes_nothing(self):
        assert time_weighted_mean(
            [(0.0, 1.0), (10.0, 99.0)], 10.0
        ) == pytest.approx(1.0)

    def test_sample_after_horizon_contributes_nothing(self):
        assert time_weighted_mean(
            [(0.0, 2.0), (12.0, 99.0)], 10.0
        ) == pytest.approx(2.0)

    def test_zero_before_first_sample(self):
        # value is 0 over [0, 5), then 6 over [5, 10)
        assert time_weighted_mean([(5.0, 6.0)], 10.0) == pytest.approx(3.0)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            time_weighted_mean([(0.0, 1.0)], 0.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.floats(min_value=-100.0, max_value=100.0),
            ),
            max_size=20,
        ).map(lambda samples: sorted(samples)),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_bounded_by_extremes(self, samples, horizon):
        mean = time_weighted_mean(samples, horizon)
        values = [v for _, v in samples] + [0.0]
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


class TestEmptyRecordSemantics:
    def _record(self) -> RequestRecord:
        request = Request(
            req_id=0, arrival=1.0, prompt_len=4, output_len=4
        )
        return RequestRecord(request=request)

    def test_tokenless_record_reads_nan(self):
        record = self._record()
        assert math.isnan(record.first_token_time)
        assert math.isnan(record.finish_time)
        assert math.isnan(record.ttft)
        assert math.isnan(record.e2e_latency)

    def test_percentiles_of_empty_report_are_nan(self):
        from repro.serving import ServingReport

        report = ServingReport(
            policy="fcfs",
            num_machines=1,
            records=[self._record()],  # admitted but never completed
            makespan=1.0,
            queue_samples=[],
            batch_samples=[],
        )
        assert report.completed == []
        assert math.isnan(report.ttft_percentile(50))
        assert math.isnan(report.tbt_percentile(99))
        assert math.isnan(report.e2e_percentile(50))
        assert math.isnan(report.queue_wait_percentile(50))

    def test_empty_cluster_report_class_tables(self):
        from repro.cluster import ClusterReport

        report = ClusterReport(
            policy="fcfs",
            num_machines=1,
            records=[],
            makespan=1.0,
            queue_samples=[],
            batch_samples=[],
        )
        name = report.class_names[0]
        assert math.isnan(report.class_ttft_percentile(name, 50))
        assert math.isnan(report.class_queue_wait_percentile(name, 99))
        attainment = report.slo_attainment(name)
        assert set(attainment) == {"ttft", "tbt", "joint"}
        assert all(math.isnan(v) for v in attainment.values())
