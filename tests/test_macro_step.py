"""Equivalence guarantees for the macro-stepped (fused) decode path.

The fused serving loop is a pure wall-clock optimisation: every simulated
quantity must be bit-for-bit what the step-at-a-time reference produces.
Three layers of pinning:

* engine — ``decode_steps`` over arbitrary chunkings equals the same
  number of sequential ``decode_step`` calls: per-step costs *and* the
  full control-plane state (predictor table + accuracy counters, hot/cold
  residency, DIMM mapping, RunResult accumulators), swept over
  hypothesis-generated batch/context schedules;
* serving — a multi-machine shared-queue simulation with
  ``macro_step=True`` equals ``macro_step=False`` record-for-record;
* cluster — the preemptive SLO smoke scenario (routers + priority
  classes + deadline preemption) equals its stepped run, including
  preemption counts and per-token timestamps.

Every span ends no later than the machine's first token boundary past
the next arrival, so even the ingest boundaries — and with them
``queue_samples`` — match the stepped loop exactly; the report
comparisons below include them.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import HermesConfig, HermesSystem
from repro.hardware import Machine
from repro.models import get_model
from repro.scenarios import load_scenario
from repro.serving import (
    BACKENDS,
    LengthDistribution,
    MachineExecutor,
    MachineGroup,
    ServingConfig,
    ServingSimulator,
    WorkloadConfig,
    generate_workload,
    make_backend,
)
from repro.sparsity import TraceConfig, generate_trace

#: module-level trace: hypothesis examples must not rebuild it
_TRACE = None


def _trace():
    global _TRACE
    if _TRACE is None:
        _TRACE = generate_trace(
            get_model("tiny-test"),
            TraceConfig(prompt_len=16, decode_len=24, granularity=8),
            seed=11,
        )
    return _TRACE


def _session(config=None, batch=2):
    system = HermesSystem(Machine(), get_model("tiny-test"), config)
    return system.session(_trace(), batch, wrap=True)


def _session_state(session):
    """Everything a decode step may have mutated, snapshot for equality."""
    return {
        "steps_done": session.steps_done,
        "decode_time": session.decode_time,
        "breakdown": dict(session.result.breakdown),
        "states": session.predictor.state_matrix.copy(),
        "stats": dataclasses.asdict(session.predictor.stats),
        "resident": session.mapper.resident_matrix.copy(),
        "resident_bytes": session.mapper.resident_bytes,
        "dimm_of": session.partition.dimm_of_matrix.copy(),
        "swap_bytes": session._swap_bytes_total,
        "remap_bytes": session._remap_bytes_total,
        "remap_groups": session._remap_groups_total,
    }


def _assert_state_equal(a, b):
    for key in a:
        if isinstance(a[key], np.ndarray):
            assert np.array_equal(a[key], b[key]), key
        else:
            assert a[key] == b[key], key


# ----------------------------------------------------------------------
# engine: fused spans == sequential steps
# ----------------------------------------------------------------------
_CONFIGS = {
    "default": HermesConfig(),
    "oracle": HermesConfig(oracle=True),
    "token-only": HermesConfig(layer_prediction=False),
    "layer-only": HermesConfig(token_prediction=False),
}


class TestDecodeStepsEquivalence:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        config_name=st.sampled_from(sorted(_CONFIGS)),
        batch=st.integers(min_value=1, max_value=6),
        contexts=st.lists(st.integers(min_value=1, max_value=200),
                          min_size=1, max_size=30),
        data=st.data(),
    )
    def test_fused_equals_sequential(self, config_name, batch, contexts, data):
        """K fused steps == K sequential steps, over random chunkings."""
        config = _CONFIGS[config_name]
        ref = _session(config, batch)
        fused = _session(config, batch)
        steps = [ref.decode_step(batch, c) for c in contexts]
        pos = 0
        fused_steps = []
        while pos < len(contexts):
            size = data.draw(
                st.integers(min_value=1, max_value=len(contexts) - pos),
                label="chunk",
            )
            span = fused.decode_steps(batch, contexts[pos:pos + size])
            assert len(span) == size
            fused_steps.extend(span.step(i) for i in range(size))
            pos += size
        assert [s.seconds for s in steps] == [s.seconds for s in fused_steps]
        assert [s.gpu_busy for s in steps] == [
            s.gpu_busy for s in fused_steps
        ]
        assert [s.dimm_busy for s in steps] == [
            s.dimm_busy for s in fused_steps
        ]
        _assert_state_equal(_session_state(ref), _session_state(fused))

    def test_until_truncates_at_crossing_step(self):
        """A time budget stops the span exactly where the stepped loop
        would next re-check its queue: after the step that crosses."""
        ref = _session(batch=2)
        fused = _session(batch=2)
        contexts = list(range(20, 30))
        steps = [ref.decode_step(2, c) for c in contexts]
        start = 3.0
        boundaries = []
        running = start
        for s in steps:
            running += s.seconds
            boundaries.append(running)
        span = fused.decode_steps(
            2, contexts, start_time=start, until=boundaries[3]
        )
        assert len(span) == 4
        assert span.end_times.tolist() == boundaries[:4]
        # remaining steps continue bit-identically in a fresh span
        rest = fused.decode_steps(
            2, contexts[4:], start_time=span.end_times[-1]
        )
        assert rest.end_times.tolist() == boundaries[4:]
        _assert_state_equal(_session_state(ref), _session_state(fused))

    def test_until_in_past_still_runs_one_step(self):
        session = _session(batch=1)
        span = session.decode_steps(1, [30, 31, 32], until=-1.0)
        assert len(span) == 1

    def test_default_contexts_match_trace_cursor(self):
        ref = _session(batch=1)
        fused = _session(batch=1)
        steps = [ref.decode_step() for _ in range(6)]
        span = fused.decode_steps(max_steps=6)
        assert [s.seconds for s in steps] == span.seconds.tolist()

    def test_exhaustion_still_raises_without_wrap(self):
        system = HermesSystem(Machine(), get_model("tiny-test"))
        session = system.session(_trace(), 1)
        n = _trace().n_decode_tokens
        session.decode_steps(max_steps=n)
        with pytest.raises(RuntimeError):
            session.decode_step()
        session2 = system.session(_trace(), 1)
        with pytest.raises(RuntimeError):
            session2.decode_steps(max_steps=n + 1)


# ----------------------------------------------------------------------
# backends: decode_span == sequential decode_step for every registry entry
# ----------------------------------------------------------------------
def _backend(name, batch):
    return make_backend(
        name,
        Machine(),
        get_model("tiny-test"),
        trace=_trace(),
        nominal_batch=batch,
    )


class TestBackendSpanEquivalence:
    """The macro-stepped loop fuses through ``decode_span`` on whatever
    backend a machine runs, so the span contract must hold for every
    registry entry — hermes natively (``decode_steps``), dense/dejavu via
    the generic sequential fallback."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        name=st.sampled_from(sorted(BACKENDS)),
        batch=st.integers(min_value=1, max_value=4),
        contexts=st.lists(st.integers(min_value=1, max_value=200),
                          min_size=1, max_size=20),
        data=st.data(),
    )
    def test_fused_equals_sequential(self, name, batch, contexts, data):
        ref = _backend(name, batch)
        fused = _backend(name, batch)
        steps = [ref.decode_step(batch, c) for c in contexts]
        boundaries = []
        running = 0.0
        for s in steps:
            running += s.seconds
            boundaries.append(running)
        pos = 0
        fused_steps = []
        while pos < len(contexts):
            size = data.draw(
                st.integers(min_value=1, max_value=len(contexts) - pos),
                label="chunk",
            )
            start = boundaries[pos - 1] if pos else 0.0
            span = fused.decode_span(
                batch, contexts[pos:pos + size], start_time=start
            )
            assert len(span) == size
            assert span.end_times.tolist() == boundaries[pos:pos + size]
            fused_steps.extend(span.step(i) for i in range(size))
            pos += size
        assert [s.seconds for s in steps] == [s.seconds for s in fused_steps]
        assert [s.gpu_busy for s in steps] == [
            s.gpu_busy for s in fused_steps
        ]
        assert [s.dimm_busy for s in steps] == [
            s.dimm_busy for s in fused_steps
        ]

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_until_truncates_after_crossing_step(self, name):
        ref = _backend(name, 2)
        fused = _backend(name, 2)
        contexts = list(range(20, 30))
        steps = [ref.decode_step(2, c) for c in contexts]
        start = 3.0
        boundaries = []
        running = start
        for s in steps:
            running += s.seconds
            boundaries.append(running)
        span = fused.decode_span(
            2, contexts, start_time=start, until=boundaries[3]
        )
        assert len(span) == 4
        assert span.end_times.tolist() == boundaries[:4]
        rest = fused.decode_span(
            2, contexts[4:], start_time=span.end_times[-1]
        )
        assert rest.end_times.tolist() == boundaries[4:]


# ----------------------------------------------------------------------
# serving / cluster: macro_step on == off
# ----------------------------------------------------------------------
def _record_view(record):
    return (
        record.request.req_id,
        record.machine,
        record.prefill_start,
        record.token_times,
        record.preemptions,
    )


def _assert_reports_equal(fused, stepped):
    assert fused.makespan == stepped.makespan
    assert fused.machine_gpu_busy == stepped.machine_gpu_busy
    assert fused.machine_dimm_busy == stepped.machine_dimm_busy
    assert fused.batch_samples == stepped.batch_samples
    assert fused.queue_samples == stepped.queue_samples
    assert ([_record_view(r) for r in fused.records]
            == [_record_view(r) for r in stepped.records])


class TestServingMacroEquivalence:
    @pytest.mark.parametrize("policy", ["fcfs", "sjf", "hermes-union"])
    @pytest.mark.parametrize("machines", [1, 3])
    def test_shared_queue_fused_equals_stepped(self, policy, machines):
        """Work-stealing machines over one queue: both modes identical."""
        workload = generate_workload(
            WorkloadConfig(rate=2000.0, num_requests=36,
                           prompt_lens=LengthDistribution(mean=24),
                           output_lens=LengthDistribution(
                               kind="uniform", mean=12, low=4, high=20)),
            seed=9)
        reports = {}
        for macro in (True, False):
            simulator = ServingSimulator(
                "tiny-test", policy,
                ServingConfig(max_batch=6, num_machines=machines,
                              macro_step=macro),
                trace=_trace())
            reports[macro] = simulator.run(list(workload))
        _assert_reports_equal(reports[True], reports[False])

    def test_heterogeneous_shared_queue_fused_equals_stepped(self):
        """Work-stealing over a mixed hermes/dense/dejavu fleet: the
        fused loop must agree with the stepped one even when machines
        disagree wildly on step latency (spans of different machines
        interleave at very different granularities)."""
        workload = generate_workload(
            WorkloadConfig(rate=2000.0, num_requests=30,
                           prompt_lens=LengthDistribution(mean=24),
                           output_lens=LengthDistribution(
                               kind="uniform", mean=12, low=4, high=20)),
            seed=13)
        fleet = [MachineGroup(count=1, backend=b)
                 for b in ("hermes", "dense", "dejavu")]
        reports = {}
        for macro in (True, False):
            simulator = ServingSimulator(
                "tiny-test",
                "fcfs",
                ServingConfig(max_batch=6, macro_step=macro),
                trace=_trace(),
                fleet=fleet,
            )
            reports[macro] = simulator.run(list(workload))
        _assert_reports_equal(reports[True], reports[False])

    def test_mixed_fleet_routed_cluster_fused_equals_stepped(self):
        """The acceptance pin: the backend-shootout scenario's mixed
        fleet — three backends behind the throughput-weighted router
        with priority classes — is bit-identical stepped."""
        scenario = load_scenario("scenarios/backend_shootout_tiny.json")
        trace = scenario.build_trace()
        fused = scenario.run(trace)
        stepped_scenario = dataclasses.replace(
            scenario,
            config=dataclasses.replace(scenario.config, macro_step=False),
        )
        _assert_reports_equal(fused, stepped_scenario.run(trace))

    def test_routed_nonpreemptive_cluster_fused_equals_stepped(self):
        """Regression: load-sensitive routing must see the same load
        snapshot at every arrival.  A full machine with no preemptor
        used to sleep through arrivals, so a sibling's retirement could
        land *before* the (late) ingest and the power-of-two router
        picked a different machine than the stepped loop; the span
        horizon now always stops at the next arrival when queues are
        router-fed."""
        scenario = load_scenario("scenarios/p2c_burst_storm_tiny.json")
        trace = scenario.build_trace()
        fused = scenario.run(trace)
        stepped_scenario = dataclasses.replace(
            scenario,
            config=dataclasses.replace(scenario.config, macro_step=False),
        )
        _assert_reports_equal(fused, stepped_scenario.run(trace))

    def test_cluster_preemption_fused_equals_stepped(self):
        """The preemptive SLO smoke scenario — routing, priority
        admission and deadline preemption — is bit-identical stepped."""
        scenario = load_scenario("scenarios/mixed_slo_tiny.json")
        trace = scenario.build_trace()
        fused = scenario.run(trace)
        stepped_scenario = dataclasses.replace(
            scenario,
            config=dataclasses.replace(scenario.config, macro_step=False),
        )
        stepped = stepped_scenario.run(trace)
        assert fused.preemptions == stepped.preemptions
        assert fused.preemptions > 0  # the scenario must exercise it
        _assert_reports_equal(fused, stepped)


# ----------------------------------------------------------------------
# satellite pins: select(), vectorized mean_union, partition cache
# ----------------------------------------------------------------------
class TestPolicySelect:
    def test_select_matches_order_head(self):
        from repro.cluster.slo import (
            PriorityClass,
            PriorityOrderedPolicy,
            SLOPolicy,
        )
        from repro.serving import get_policy
        rng = np.random.default_rng(5)
        slo = SLOPolicy(classes=(
            PriorityClass(name="default"),
            PriorityClass(name="hi", priority=3, ttft_slo=0.1),
        ))
        base_policies = [
            get_policy(n) for n in ("fcfs", "sjf", "hermes-union")
        ]
        policies = base_policies + [
            PriorityOrderedPolicy(base, slo) for base in base_policies
        ]
        for trial in range(20):
            n = int(rng.integers(1, 12))
            queue = [
                generate_workload(
                    WorkloadConfig(rate=50.0, num_requests=1),
                    seed=100 * trial + i,
                    class_name="hi" if rng.random() < 0.4 else "default",
                )[0]
                for i in range(n)
            ]
            queue = [
                dataclasses.replace(r, req_id=i) for i, r in enumerate(queue)
            ]
            for policy in policies:
                head = policy.order(queue)[0]
                assert queue[policy.select(queue)] is head

    def test_mean_union_matches_per_layer_loop(self):
        executor = MachineExecutor(
            Machine(), get_model("tiny-test"), trace=_trace()
        )
        session = executor.session
        layers = range(get_model("tiny-test").num_layers)
        for batch in (1, 2, 5, 8):
            reference = float(np.mean(
                [session.union_factor(layer, batch) for layer in layers]))
            assert executor.mean_union(batch) == reference

    def test_partition_cache_reuses_solution_across_runs(self):
        trace = generate_trace(
            get_model("tiny-test"),
            TraceConfig(prompt_len=16, decode_len=24, granularity=8),
            seed=23,
        )
        a = MachineExecutor(Machine(), get_model("tiny-test"), trace=trace)
        b = MachineExecutor(Machine(), get_model("tiny-test"), trace=trace)
        pa, pb = a.session.partition, b.session.partition
        # distinct objects (window scheduling mutates them per run) with
        # identical solved contents
        assert pa is not pb
        assert all(
            np.array_equal(x, y) for x, y in zip(pa.hot_masks, pb.hot_masks)
        )
        assert np.array_equal(pa.dimm_of_matrix, pb.dimm_of_matrix)
