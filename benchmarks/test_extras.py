"""Bench: extension experiments (window/threshold sweeps, energy)."""

from repro.experiments import ablation_extras, energy_eval


def test_ablation_extras(regenerate):
    result = regenerate(ablation_extras.run)
    windows = {r[1]: r[2] for r in result.rows if r[0] == "window"}
    assert windows, "window sweep produced no rows"


def test_energy(regenerate):
    result = regenerate(energy_eval.run)
    eff = {(r[0], r[1]): r[3] for r in result.rows}
    for model in energy_eval.MODELS:
        assert eff[(model, "Hermes")] > eff[(model, "FlexGen")]
