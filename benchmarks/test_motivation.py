"""Bench: regenerate the §III motivation statistics."""

from repro.experiments import motivation


def test_motivation(regenerate):
    result = regenerate(motivation.run)
    stats = {row[0]: row[1] for row in result.rows}
    assert stats["fixed vs oracle slowdown"] >= 1.0  # paper: 1.63x
