"""Bench: regenerate Figure 15 (GPU sensitivity study)."""

from repro.experiments import fig15_gpus


def test_fig15(regenerate):
    result = regenerate(fig15_gpus.run)
    rates = {(r[0], r[1], r[2]): r[3] for r in result.rows}
    for (model, batch, gpu), value in rates.items():
        if gpu == "RTX 4090" and value is not None:
            t4 = rates.get((model, batch, "Tesla T4"))
            if t4:
                assert value > t4  # paper: 4090 averages 2.02x over T4
