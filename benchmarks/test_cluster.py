"""Benchmark: regenerate the cluster scenario x router sweep."""

from repro.experiments import cluster_eval


def test_cluster_eval(regenerate):
    result = regenerate(cluster_eval.run)
    routers = set(result.column("router"))
    assert {"round-robin", "least-loaded", "session-affinity",
            "power-of-two"} <= routers
    assert all(done > 0 for done in result.column("done"))
    # the preemptive mixed-SLO scenario protects its interactive class:
    # under the load-balancing routers, joint attainment stays >= 0.9
    rows = [row for row in result.rows
            if row[0] == "mixed_slo_tiny" and row[2] == "interactive"
            and row[1] in ("least-loaded", "power-of-two")]
    assert rows
    joint = result.headers.index("SLO joint")
    assert all(row[joint] >= 0.9 for row in rows)
    # preemption happened in every mixed-SLO cell
    preempt = result.headers.index("preempt")
    assert all(row[preempt] > 0 for row in rows)
