"""Bench: predictor accuracy/footprint claims (§IV-C1)."""

from repro.experiments import predictor_eval


def test_predictor(regenerate):
    result = regenerate(predictor_eval.run)
    for row in result.rows:
        assert row[1] > 0.90  # paper: ~98% accuracy
    kb = {row[0]: row[4] for row in result.rows}
    assert kb["LLaMA-7B"] == 232  # paper: 232 KB state table
