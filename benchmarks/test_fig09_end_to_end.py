"""Bench: regenerate Figure 9 (offloading-system comparison, OPT family)."""

from repro.experiments import fig09_end_to_end


def test_fig09(regenerate):
    result = regenerate(fig09_end_to_end.run)
    rates = {(r[0], r[1]): r[2] for r in result.rows}
    for model in fig09_end_to_end.MODELS:
        assert rates[(model, "Hermes")] > rates[(model, "Deja Vu")]
        assert rates[(model, "Deja Vu")] > rates[(model, "FlexGen")]
        assert (rates[(model, "FlexGen")]
                > rates[(model, "Huggingface Accelerate")])
