"""Bench: regenerate Figure 12 (per-token latency breakdowns)."""

from repro.experiments import fig12_breakdown


def test_fig12(regenerate):
    result = regenerate(fig12_breakdown.run)
    comm_idx = result.headers.index("communication ms/tok")
    fc_idx = result.headers.index("fc ms/tok")
    for row in result.rows:
        if row[2] == "Deja Vu":
            # paper: PCIe communication dominates Deja Vu (~89%)
            assert row[comm_idx] > row[fc_idx]
