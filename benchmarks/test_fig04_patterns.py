"""Bench: regenerate Figure 4 (activation-sparsity distribution patterns)."""

from repro.experiments import fig04_patterns


def test_fig04(regenerate):
    result = regenerate(fig04_patterns.run)
    for row in result.rows:
        assert row[1] > 0.85  # adjacent similarity (paper: >90%)
