"""Benchmark harness configuration.

Each benchmark regenerates one paper figure/statistic via the experiment
modules and prints the reproduced table, so ``pytest benchmarks/
--benchmark-only`` both times the harness and emits the paper-shaped rows.
Figures are simulated once per benchmark (rounds=1): the quantity of
interest is the reproduced table, and a single run is deterministic.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run an experiment once under the benchmark timer and print it."""

    def _run(experiment, *, quick: bool = True):
        result = benchmark.pedantic(
            experiment, kwargs={"quick": quick}, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(result.to_text())
        return result

    return _run
