"""Decode-throughput and sweep-wall-time measurement bodies.

Shared by ``tools/bench.py`` (which writes ``BENCH_decode.json`` and
enforces the CI regression gate) and usable interactively::

    PYTHONPATH=src python -c "
    from benchmarks.bench_decode import bench_decode_steps
    print(bench_decode_steps())"

Measurements are wall-clock steps/sec of :meth:`HermesSession.decode_step`
on the fixed ``tiny-test`` workload (the same trace the golden-equivalence
test pins, so the number tracks exactly the code path whose outputs are
locked), plus the end-to-end wall time of a representative experiment
sweep.
"""

from __future__ import annotations

import inspect
import time

from repro.core import HermesSystem
from repro.experiments import ALL_EXPERIMENTS, clear_trace_cache
from repro.hardware import Machine
from repro.models import get_model
from repro.sparsity import TraceConfig, generate_trace

#: the golden-equivalence workload (mirrors tests/conftest.py tiny_trace)
BENCH_MODEL = "tiny-test"
BENCH_TRACE = dict(prompt_len=32, decode_len=64, granularity=4)
BENCH_SEED = 11


def bench_calibration(*, min_seconds: float = 0.4) -> float:
    """Machine-speed proxy: iterations/sec of a fixed numpy kernel mix.

    The mix mirrors the decode fast path's op profile (small-matrix
    boolean algebra, segmented bincount, elementwise rooflines) but never
    touches engine code, so the ratio of two machines' calibration scores
    estimates how their decode steps/sec relate *independently of engine
    changes*.  ``tools/bench.py`` uses it to scale the committed baseline
    before applying the regression tolerance on a different machine.
    """
    import numpy as np

    rng = np.random.default_rng(0)
    masks = rng.random((4, 320)) < 0.3
    bytes_ = rng.integers(1, 5000, 320).astype(np.int64)
    keys = rng.integers(0, 64, (4, 320)).astype(np.int64)
    iters = 0
    start = time.perf_counter()
    while True:
        for _ in range(32):
            m = masks & ~masks[::-1]
            sums = m @ bytes_
            w = m * bytes_
            binned = np.bincount(keys.ravel(), weights=w.ravel(),
                                 minlength=256).reshape(4, 64)
            np.maximum(binned / 1e9, binned * 2.0 / 1e12).max(axis=1)
            (sums * 1.5).clip(0, 1e12)
        iters += 32
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return iters / elapsed


def _bench_session(batch: int):
    model = get_model(BENCH_MODEL)
    trace = generate_trace(model, TraceConfig(**BENCH_TRACE), seed=BENCH_SEED)
    session = HermesSystem(Machine(), model).session(trace, batch, wrap=True)
    return session


def bench_decode_steps(
    batch: int = 1, *, min_seconds: float = 1.5, warmup_steps: int = 128
) -> dict:
    """Measure decode steps/sec at one batch size.

    Runs ``warmup_steps`` first (session caches fill, branch-predictor-ish
    steady state), then times whole 64-step blocks until ``min_seconds``
    of measured wall time accumulate.
    """
    session = _bench_session(batch)
    for _ in range(warmup_steps):
        session.decode_step()
    steps = 0
    start = time.perf_counter()
    while True:
        for _ in range(64):
            session.decode_step()
        steps += 64
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            break
    return {
        "model": BENCH_MODEL,
        "batch": batch,
        "steps": steps,
        "seconds": elapsed,
        "steps_per_sec": steps / elapsed,
    }


def bench_sweep(
    experiment: str = "serving", *, quick: bool = True, jobs: int = 1
) -> dict:
    """Wall time of one experiment sweep, trace caches cleared first."""
    if experiment not in ALL_EXPERIMENTS:
        raise ValueError(f"unknown experiment {experiment!r}")
    entry = ALL_EXPERIMENTS[experiment]
    kwargs = {"quick": quick}
    if "jobs" in inspect.signature(entry).parameters:
        kwargs["jobs"] = jobs
    clear_trace_cache()
    start = time.perf_counter()
    entry(**kwargs)
    elapsed = time.perf_counter() - start
    clear_trace_cache()
    return {
        "experiment": experiment,
        "quick": quick,
        "jobs": jobs,
        "seconds": elapsed,
    }
