"""Bench: regenerate Figure 16 (GEMV-unit design-space exploration)."""

from repro.experiments import fig16_dse


def test_fig16(regenerate):
    result = regenerate(fig16_dse.run)
    rows = {row[0]: row[1:] for row in result.rows}
    assert rows[1][-1] < 1.5   # batch 1 saturates (paper: by 64 mult)
    assert rows[16][-1] > 2.0  # batch 16 keeps scaling (paper: 3.86x)
