"""Bench: regenerate Figure 10 (sparsity & NDP design effectiveness)."""

from repro.experiments import fig10_sparsity_ndp


def test_fig10(regenerate):
    result = regenerate(fig10_sparsity_ndp.run)
    rates = {(r[0], r[1]): r[2] for r in result.rows}
    for model in fig10_sparsity_ndp.MODELS:
        assert rates[(model, "Hermes")] > rates[(model, "Hermes-base")]
        assert (rates[(model, "Hermes-base")]
                > rates[(model, "Huggingface Accelerate")])
