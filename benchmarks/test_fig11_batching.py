"""Bench: regenerate Figure 11 (batch-size sweep, six systems)."""

from repro.experiments import fig11_batching


def test_fig11(regenerate):
    result = regenerate(fig11_batching.run)
    hermes = {(r[0], r[1]): r[3] for r in result.rows if r[2] == "Hermes"}
    for model in fig11_batching.MODELS:
        batches = sorted(b for m, b in hermes if m == model)
        series = [hermes[(model, b)] for b in batches]
        assert all(a < b * 1.05 for a, b in zip(series, series[1:]))
