"""Bench: regenerate Figure 14 (throughput vs NDP-DIMM count)."""

from repro.experiments import fig14_dimm_scaling


def test_fig14(regenerate):
    result = regenerate(fig14_dimm_scaling.run)
    for row in result.rows:
        series = [v for v in row[1:] if v is not None]
        assert series, row[0]  # every model runs on some pool size
        # more DIMMs never hurt materially (paper: monotone, saturating)
        assert all(b >= a * 0.9 for a, b in zip(series, series[1:]))
