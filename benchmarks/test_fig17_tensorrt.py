"""Bench: regenerate Figure 17 (Hermes vs TensorRT-LLM on 5x A100)."""

from repro.experiments import fig17_tensorrt


def test_fig17(regenerate):
    result = regenerate(fig17_tensorrt.run)
    efficiency = {row[0]: row[3] for row in result.rows}
    # paper: 79.1% of TensorRT-LLM at batch 1, 24.4% at batch 16 — the
    # efficiency must fall with batch as the dense cluster batches better
    assert efficiency[1] > efficiency[16]
