"""Bench: regenerate Figure 13 (scheduling-strategy ablation)."""

from repro.experiments import fig13_ablation


def test_fig13(regenerate):
    result = regenerate(fig13_ablation.run)
    speedups = {(r[0], r[1], r[2]): r[3] for r in result.rows}
    for (model, batch, variant), value in speedups.items():
        if variant == "Hermes":
            partial = speedups[(model, batch, "Hermes-partition")]
            assert value >= partial * 0.9  # full system competitive
