"""Bench: DIMM-link migration claims (§IV-A1)."""

from repro.experiments import dimmlink_eval


def test_dimmlink(regenerate):
    result = regenerate(dimmlink_eval.run)
    stats = {row[0]: row[1] for row in result.rows}
    speedup = stats["DIMM-link migration speedup vs host routing"]
    assert speedup > 5  # paper: >62x
    assert (stats["migration share of runtime (DIMM-link)"]
            < stats["migration share of runtime (host-routed)"])
