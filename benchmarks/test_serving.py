"""Benchmark: regenerate the online-serving arrival-rate sweep."""

from repro.experiments import serving_eval


def test_serving_eval(regenerate):
    result = regenerate(serving_eval.run)
    policies = set(result.column("policy"))
    assert {"fcfs", "fcfs-nobatch", "sjf", "hermes-union"} <= policies
    # every (rate, policy) cell completed its whole workload
    assert all(done > 0 for done in result.column("done"))
    # at the top arrival rate, continuous batching beats the serial baseline
    rates = result.column("req/s")
    top = max(rates)
    by_policy = {row[1]: row for row in result.rows if row[0] == top}
    assert (by_policy["fcfs"][3] > 1.5 * by_policy["fcfs-nobatch"][3])
