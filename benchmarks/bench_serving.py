"""Cluster-serving benchmark bodies: scenario wall time + drift probes.

Shared by ``tools/bench_serving.py`` (which maintains
``BENCH_serving.json`` and the CI serving gate) and usable
interactively::

    PYTHONPATH=src python -c "
    from benchmarks.bench_serving import bench_scenario
    print(bench_scenario())"

Two kinds of numbers come out of one measurement:

* **wall time** of end-to-end scenario runs (workload gen + cluster
  simulation + metrics) — machine-dependent, tracked informationally
  and calibration-scaled like the decode bench;
* **simulated metrics** (tokens/s, per-class SLO attainment,
  preemptions) — *deterministic* given the code, so any change is real
  behaviour drift; the CI gate pins them the way the engine goldens pin
  ``decode_step``.

Three scenarios are benched: the homogeneous-Hermes SLO smoke
scenario, the mixed hermes/dense/dejavu fleet behind the
throughput-weighted router (``backend_shootout_tiny.json``), and the
fault-injection chaos drill (``chaos_mixed_tiny.json``), so the Hermes
fast path, the pluggable-backend dispatch, and the failure-handling
path (migrations, availability, MTTR) all stay gated.  The
1000-machine ``megafleet_1k.json`` scale drill is additionally timed
as a single end-to-end run (sharded loop + ``fidelity: fast``), gating
the scale path the same way.
"""

from __future__ import annotations

import dataclasses
import time

from repro.experiments.cluster_eval import resolve_scenario
from repro.scenarios import load_scenario

#: the spec the serving bench pins — the CI smoke scenario
BENCH_SCENARIO = "mixed_slo_tiny.json"
#: the heterogeneous-fleet spec the bench also pins: three backends
#: (hermes/dense/dejavu) behind the throughput-weighted router, so the
#: gate covers the pluggable-backend dispatch path end to end
BENCH_MIXED_FLEET_SCENARIO = "backend_shootout_tiny.json"
#: the fault-injection drill (crashes + straggler + partition with
#: health-aware routing): pins the failure-handling path end to end
BENCH_CHAOS_SCENARIO = "chaos_mixed_tiny.json"
#: the correlated-failure drill (rack-wide domain crash + a DIMM
#: degrade with renegotiation): pins the failure-domain path
BENCH_DOMAINS_SCENARIO = "chaos_domains_tiny.json"
#: the 1000-machine scale drill (sharded event loop + fidelity:fast):
#: pins the megafleet path end to end
BENCH_MEGAFLEET_SCENARIO = "megafleet_1k.json"


def bench_scenario(
    spec: str = BENCH_SCENARIO, *, min_seconds: float = 1.0
) -> dict:
    """Measure end-to-end runs/sec of one scenario, plus its metrics.

    The scenario (spec parse, workload generation, trace, cluster
    simulation, report) re-runs whole until ``min_seconds`` of wall time
    accumulate; the simulated metrics of the final run are included for
    the drift gate — they are identical across runs by construction.

    The default path is the macro-stepped (fused multi-token) serving
    loop; a shorter measurement of the same scenario with
    ``macro_step=False`` — the per-token reference loop, which produces
    bit-identical simulated metrics — is reported under ``fused_loop``
    so the committed record tracks what the fusion buys end to end.
    """
    path = resolve_scenario(spec)
    scenario = load_scenario(path)
    trace = scenario.build_trace()  # shared across runs, like a server
    scenario.run(trace)  # warmup: solve partitions/unions once, untimed
    runs = 0
    report = None
    start = time.perf_counter()
    while True:
        report = scenario.run(trace)
        runs += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            break
    fused_rps = runs / elapsed

    # stepped reference: same scenario, macro-stepping off
    stepped = dataclasses.replace(
        scenario,
        config=dataclasses.replace(scenario.config, macro_step=False))
    stepped.run(trace)  # warmup, untimed
    stepped_runs = 0
    stepped_start = time.perf_counter()
    while True:
        stepped.run(trace)
        stepped_runs += 1
        stepped_elapsed = time.perf_counter() - stepped_start
        if stepped_elapsed >= min_seconds / 2:
            break
    stepped_rps = stepped_runs / stepped_elapsed

    attainment = {
        name: report.slo_attainment(name)["joint"]
        for name in report.class_names
        if any(r.finished for r in report.class_records(name))
    }
    return {
        "scenario": scenario.name,
        "runs": runs,
        "seconds": elapsed,
        "runs_per_sec": fused_rps,
        "fused_loop": {
            "stepped_runs": stepped_runs,
            "stepped_runs_per_sec": stepped_rps,
            "speedup": fused_rps / stepped_rps,
        },
        "simulated": {
            "completed": len(report.completed),
            "tokens_per_second": report.tokens_per_second,
            "makespan": report.makespan,
            "preemptions": report.preemptions,
            "fairness": report.fairness_index(),
            "slo_joint": attainment,
        },
    }


def bench_megafleet(spec: str = BENCH_MEGAFLEET_SCENARIO) -> dict:
    """One timed end-to-end run of the 1000-machine scale drill.

    The megafleet scenario (100k requests over 1000 machines, sharded
    event loop + ``fidelity: fast``) costs ~10 s of wall time per run,
    so unlike the tiny scenarios it is measured as a *single* timed
    run with no warmup pass — the committed baseline and the CI check
    then measure exactly the same thing (one cold run including the
    one-time trace/partition work), keeping the wall ratio honest.
    The ``simulated`` half is unaffected either way: sharded runs are
    pinned bit-identical run-to-run by the tier-1 suite.  There is no
    stepped reference (``fused_loop``) here: the macro-step comparison
    is already pinned on the tiny scenarios, and doubling a 10 s bench
    to re-measure it at scale buys nothing.
    """
    path = resolve_scenario(spec)
    scenario = load_scenario(path)
    trace = scenario.build_trace()
    start = time.perf_counter()
    report = scenario.run(trace)
    elapsed = time.perf_counter() - start

    attainment = {
        name: report.slo_attainment(name)["joint"]
        for name in report.class_names
        if any(r.finished for r in report.class_records(name))
    }
    return {
        "scenario": scenario.name,
        "runs": 1,
        "seconds": elapsed,
        "runs_per_sec": 1.0 / elapsed,
        "simulated": {
            "completed": len(report.completed),
            "tokens_per_second": report.tokens_per_second,
            "makespan": report.makespan,
            "preemptions": report.preemptions,
            "fairness": report.fairness_index(),
            "slo_joint": attainment,
        },
    }


def bench_fault_overhead(*, min_seconds: float = 0.5) -> dict:
    """Wall time + drift probes for the fault-injection serving path.

    Runs :func:`bench_scenario` on the bundled chaos drill (crashes,
    an 8x straggler, a router partition, health-aware routing) and
    extends the ``simulated`` record with the failure metrics the gate
    must pin: migration count, availability, and mean time to recover.
    All three are deterministic given the code — drift means the
    failure semantics changed — and the scenario is built so none of
    them degenerates to nan (nan would poison the float comparison and
    the strict-JSON record alike).
    """
    record = bench_scenario(BENCH_CHAOS_SCENARIO, min_seconds=min_seconds)
    scenario = load_scenario(resolve_scenario(BENCH_CHAOS_SCENARIO))
    report = scenario.run(scenario.build_trace())
    simulated = record["simulated"]
    simulated["migrations"] = report.migrations
    simulated["availability"] = report.availability
    simulated["mean_time_to_recover"] = report.mean_time_to_recover
    simulated["unfinished"] = len(report.unfinished)
    for key in ("availability", "mean_time_to_recover"):
        if simulated[key] != simulated[key]:  # nan check
            raise ValueError(
                f"chaos bench scenario produced nan {key}; the bundled "
                "spec must keep its faults inside the run")
    return record


def bench_degradation(*, min_seconds: float = 0.5) -> dict:
    """Wall time + drift probes for the failure-domain serving path.

    Runs :func:`bench_scenario` on the bundled rack-outage drill (a
    domain crash taking both rack0 machines down together, plus a DIMM
    degrade that renegotiates machine 3 onto half its pool) and extends
    the ``simulated`` record with the correlated-failure metrics the
    gate must pin: migration count (crash evacuations *and* degrade
    KV evictions), fleet and per-domain availability, and the
    correlated-outage seconds.  All deterministic given the code; the
    scenario declares domains, so none of them is nan.
    """
    record = bench_scenario(BENCH_DOMAINS_SCENARIO,
                            min_seconds=min_seconds)
    scenario = load_scenario(resolve_scenario(BENCH_DOMAINS_SCENARIO))
    report = scenario.run(scenario.build_trace())
    simulated = record["simulated"]
    simulated["migrations"] = report.migrations
    simulated["availability"] = report.availability
    simulated["mean_time_to_recover"] = report.mean_time_to_recover
    simulated["unfinished"] = len(report.unfinished)
    simulated["correlated_outage_seconds"] = (
        report.correlated_outage_seconds)
    simulated["domain_availability"] = report.domain_availability()
    for key in ("availability", "mean_time_to_recover",
                "correlated_outage_seconds"):
        if simulated[key] != simulated[key]:  # nan check
            raise ValueError(
                f"domains bench scenario produced nan {key}; the "
                "bundled spec must keep its faults (and domains) "
                "inside the run")
    return record


def bench_planner(*, min_seconds: float = 0.5) -> dict:
    """Wall time + drift probes for the capacity planner.

    Times full ``plan()`` passes (enumerate, analytic prune, frontier,
    quick simulator validation) over the CI smoke scenario, and records
    the planner's *decisions* — candidate/prune/frontier counts and the
    chosen fleet — as the deterministic ``simulated`` half for the
    drift gate: a changed answer means the planning semantics changed.
    """
    from repro.planner import plan

    path = resolve_scenario(BENCH_SCENARIO)
    plan(path, quick=True)  # warmup: fill the per-process trace caches
    runs = 0
    start = time.perf_counter()
    while True:
        result = plan(path, quick=True)
        runs += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            break
    best = result.best
    return {
        "scenario": result.scenario,
        "runs": runs,
        "seconds": elapsed,
        "runs_per_sec": runs / elapsed,
        "simulated": {
            "num_candidates": result.num_candidates,
            "num_pruned": result.num_pruned,
            "frontier_size": len(result.frontier),
            "validated_passing": sum(
                1 for o in result.validations if o.passed
            ),
            "best": None if best is None else {
                "backend": best.candidate.backend,
                "gpu": best.candidate.gpu,
                "model": best.candidate.model,
                "count": best.candidate.count,
                "nominal_batch": best.candidate.nominal_batch,
                "cost_usd": best.cost_usd,
            },
        },
    }


def bench_telemetry_overhead(
    spec: str = BENCH_SCENARIO, *, min_seconds: float = 0.5
) -> dict:
    """Measure what *enabled* telemetry costs the serving loop.

    Runs the scenario back-to-back untraced (the default
    ``NullTracer`` path, which the runs/sec gate covers) and with a
    :class:`~repro.telemetry.RecordingTracer` attached, reporting both
    rates and the fractional slowdown.  Recorded informationally in
    ``BENCH_serving.json`` under the top-level ``telemetry`` key — the
    disabled path stays inside the existing gates; this records what
    opting in costs.
    """
    from repro.telemetry import RecordingTracer

    path = resolve_scenario(spec)
    scenario = load_scenario(path)
    trace = scenario.build_trace()
    scenario.run(trace)  # warmup, untimed

    def rate(tracer_factory):
        runs = 0
        events = 0
        start = time.perf_counter()
        while True:
            tracer = tracer_factory()
            scenario.run(trace, tracer=tracer)
            runs += 1
            if tracer is not None:
                events = len(tracer.events)
            elapsed = time.perf_counter() - start
            if elapsed >= min_seconds:
                return runs / elapsed, events

    untraced_rps, _ = rate(lambda: None)
    recording_rps, events = rate(RecordingTracer)
    return {
        "scenario": scenario.name,
        "events_per_run": events,
        "untraced_runs_per_sec": untraced_rps,
        "recording_runs_per_sec": recording_rps,
        "recording_overhead_frac": 1.0 - recording_rps / untraced_rps,
    }
