"""Chaos drill: serve through crashes, stragglers, and partitions.

Loads the bundled fault-injection scenario (a mixed hermes/dense/dejavu
fleet where one machine crashes and restarts, another straggles at 8x,
and a third drops off the router for a window) and runs it twice: once
with health-blind routing and once with the health-aware front door
that skips down/partitioned machines and demotes observed stragglers.

The printout is the operator's view of a bad day: availability, mean
time to recover, migrations (each one an honest re-prefill — tokens
survive, KV-cache does not), and per-class SLO attainment counting the
requests the outage stranded:

    PYTHONPATH=src python examples/chaos_drill.py
"""

import dataclasses
import pathlib

from repro.api import load_scenario

SPEC = pathlib.Path(__file__).resolve().parent.parent / (
    "scenarios/chaos_mixed_tiny.json"
)

scenario = load_scenario(SPEC)
workload = scenario.build_workload()
faults = scenario.config.faults
print(
    f"scenario: {scenario.name} — {len(workload)} requests on "
    f"{scenario.config.num_machines} machines; faults: "
    f"{len(faults.crashes)} crashes, {len(faults.stragglers)} "
    f"stragglers, {len(faults.partitions)} partitions"
)

for health_aware in (False, True):
    run = dataclasses.replace(
        scenario,
        config=dataclasses.replace(
            scenario.config, health_aware=health_aware
        ),
    )
    report = run.run()
    label = "health-aware" if health_aware else "health-blind"
    print(f"\n--- routing: {label} ---")
    print(
        f"  availability {report.availability:7.2%}   "
        f"MTTR {report.mean_time_to_recover * 1e3:.1f} ms   "
        f"migrations {report.migrations}   "
        f"goodput {report.goodput:8.0f} tok/s"
    )
    for name in report.class_names:
        if not report.class_records(name):
            continue
        attainment = report.slo_attainment(name)
        print(
            f"  {name:<12} TTFT p99 "
            f"{report.class_ttft_percentile(name, 99) * 1e3:7.2f} ms   "
            f"SLO joint {attainment['joint']:6.1%}"
        )
