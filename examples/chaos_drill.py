"""Chaos drill: serve through crashes, stragglers, and partitions.

Loads the bundled fault-injection scenario (a mixed hermes/dense/dejavu
fleet where one machine crashes and restarts, another straggles at 8x,
and a third drops off the router for a window) and runs it twice: once
with health-blind routing and once with the health-aware front door
that skips down/partitioned machines and demotes observed stragglers.

The printout is the operator's view of a bad day: availability, mean
time to recover, migrations (each one an honest re-prefill — tokens
survive, KV-cache does not), and per-class SLO attainment counting the
requests the outage stranded:

    PYTHONPATH=src python examples/chaos_drill.py

``--domains`` runs the rack-outage drill instead: a 4-machine hermes
fleet split into two racks, where a rack-wide PDU failure takes both
rack0 machines down *together* (a correlated outage — note the joint
SLO damage versus what two independent crashes would cost) and a rack1
machine loses half its DIMMs mid-run, renegotiating onto the surviving
pool instead of dying:

    PYTHONPATH=src python examples/chaos_drill.py --domains
"""

import dataclasses
import pathlib
import sys

from repro.api import load_scenario

SCENARIOS = pathlib.Path(__file__).resolve().parent.parent / "scenarios"

with_domains = "--domains" in sys.argv[1:]
spec = SCENARIOS / (
    "chaos_domains_tiny.json" if with_domains else "chaos_mixed_tiny.json"
)

scenario = load_scenario(spec)
workload = scenario.build_workload()
faults = scenario.config.faults
print(
    f"scenario: {scenario.name} — {len(workload)} requests on "
    f"{scenario.config.num_machines} machines; faults: "
    f"{len(faults.expanded_crashes)} crashes "
    f"({len(faults.domain_crashes)} rack-wide), "
    f"{len(faults.stragglers)} stragglers, "
    f"{len(faults.partitions)} partitions, "
    f"{len(faults.degrades)} degrades"
)
if faults.domains:
    for domain in faults.domains:
        members = ", ".join(str(m) for m in domain.machines)
        print(f"  domain {domain.name}: machines [{members}]")

for health_aware in (False, True):
    run = dataclasses.replace(
        scenario,
        config=dataclasses.replace(
            scenario.config, health_aware=health_aware
        ),
    )
    report = run.run()
    label = "health-aware" if health_aware else "health-blind"
    print(f"\n--- routing: {label} ---")
    print(
        f"  availability {report.availability:7.2%}   "
        f"MTTR {report.mean_time_to_recover * 1e3:.1f} ms   "
        f"migrations {report.migrations}   "
        f"goodput {report.goodput:8.0f} tok/s"
    )
    correlated = report.correlated_outage_seconds
    print(
        "  correlated outage "
        + ("—" if correlated != correlated
           else f"{correlated * 1e3:.1f} ms")
        + "   domain availability "
        + (", ".join(
            f"{name} {avail:.2%}"
            for name, avail in report.domain_availability().items()
        ) or "—")
    )
    for name in report.class_names:
        if not report.class_records(name):
            continue
        attainment = report.slo_attainment(name)
        print(
            f"  {name:<12} TTFT p99 "
            f"{report.class_ttft_percentile(name, 99) * 1e3:7.2f} ms   "
            f"SLO joint {attainment['joint']:6.1%}"
        )
