"""Serve a multi-tenant SLO scenario on a cluster — the cluster quickstart.

Loads the bundled mixed-SLO scenario (interactive chat + batch analytics
on a 2-machine tiny-test cluster), runs it with and without preemptive
SLO scheduling, and prints the per-class report an operator would watch:

    PYTHONPATH=src python examples/cluster_scenarios.py
"""

import dataclasses
import pathlib

from repro.api import load_scenario

SPEC = pathlib.Path(__file__).resolve().parent.parent / (
    "scenarios/mixed_slo_tiny.json"
)

scenario = load_scenario(SPEC)
workload = scenario.build_workload()
print(
    f"scenario: {scenario.name} — {len(workload)} requests from "
    f"{len(scenario.tenants)} tenants on "
    f"{scenario.config.num_machines} machines "
    f"({scenario.config.router} router)"
)

for preemptive in (False, True):
    run = dataclasses.replace(
        scenario,
        slo=dataclasses.replace(scenario.slo, preemptive=preemptive),
    )
    report = run.run()
    print(f"\n--- preemptive admission: {'on' if preemptive else 'off'} ---")
    print(
        f"  throughput  {report.tokens_per_second:8.0f} tok/s   "
        f"preemptions {report.preemptions}   "
        f"fairness {report.fairness_index():.3f}"
    )
    for name in report.class_names:
        if not report.class_records(name):
            continue
        attainment = report.slo_attainment(name)
        print(
            f"  {name:<12} TTFT p50/p99 "
            f"{report.class_ttft_percentile(name, 50) * 1e3:7.2f} /"
            f"{report.class_ttft_percentile(name, 99) * 1e3:7.2f} ms   "
            f"TBT p99 {report.class_tbt_percentile(name, 99) * 1e3:5.2f} ms"
            f"   SLO joint {attainment['joint']:6.1%}"
        )
