"""The paper's headline scenario: LLaMA2-70B on a ~$2,500 box.

Compares Hermes (one RTX 4090 + 8 NDP-DIMMs) against the high-performance
reference (TensorRT-LLM on 5x A100, ~$50,000) and against the offloading
alternatives a budget user could actually run today — the intro's
motivating comparison plus Figure 17's cost-efficiency argument.

Run with::

    python examples/budget_llama70b.py
"""

from repro.api import (
    HermesBase,
    HermesHost,
    HermesSystem,
    HuggingfaceAccelerate,
    Machine,
    TensorRTLLM,
    TraceConfig,
    generate_trace,
    get_model,
    machine_cost_usd,
    server_cost_usd,
)


def main() -> None:
    model = get_model("LLaMA2-70B")
    machine = Machine()
    trace = generate_trace(
        model,
        TraceConfig(prompt_len=128, decode_len=128, granularity=64),
        seed=7,
    )

    budget = machine_cost_usd(machine)
    server = server_cost_usd(num_a100=5)
    print(f"{model.describe()}")
    print(f"budget box: ${budget:,.0f} | A100 server: ${server:,.0f} "
          f"({budget / server:.1%} of the cost)\n")

    systems = [
        HuggingfaceAccelerate(machine, model),
        HermesHost(machine, model),
        HermesBase(machine, model),
        HermesSystem(machine, model),
        TensorRTLLM(model),
    ]
    print(f"{'system':26s}{'tokens/s':>10s}{'tokens/s per $1k':>18s}")
    for system in systems:
        result = system.run(trace, batch=1)
        cost = server if system.name == "TensorRT-LLM" else budget
        per_dollar = result.tokens_per_second / (cost / 1000)
        print(f"{system.name:26s}{result.tokens_per_second:10.2f}"
              f"{per_dollar:18.2f}")

    hermes = HermesSystem(machine, model).run(trace, batch=1)
    tensorrt = TensorRTLLM(model).run(trace, batch=1)
    efficiency = hermes.tokens_per_second / tensorrt.tokens_per_second
    print(f"\nHermes reaches {efficiency:.1%} of TensorRT-LLM throughput "
          f"at batch 1 on {budget / server:.1%} of the budget "
          "(paper: 79.1% at ~5%)")


if __name__ == "__main__":
    main()
