"""Predictor playground: inspect the lightweight activation predictor.

Replays a LLaMA-7B activation trace through the state-table + correlation
predictor (§IV-C1), comparing the three prediction modes the ablation of
Figure 13 uses, and contrasts the footprint with Deja Vu's MLP predictors.

Run with::

    python examples/predictor_playground.py
"""

from repro.api import (
    ActivationPredictor,
    DejaVu,
    Machine,
    PredictorConfig,
    TraceConfig,
    generate_trace,
    get_model,
)

MODES = {
    "token + layer (Hermes)": PredictorConfig(),
    "token-wise only": PredictorConfig(use_layer_prediction=False),
    "layer-wise only": PredictorConfig(use_token_prediction=False),
}


def replay(trace, config: PredictorConfig) -> ActivationPredictor:
    predictor = ActivationPredictor(trace.layout, config)
    predictor.initialize(trace)
    for t in trace.decode_tokens():
        prev = None
        for l in range(trace.num_layers):
            actual = trace.active(l, t)
            predicted = predictor.predict(l, prev)
            predictor.observe(l, actual, predicted)
            prev = actual
    return predictor


def main() -> None:
    model = get_model("LLaMA-7B")
    trace = generate_trace(
        model,
        TraceConfig(prompt_len=128, decode_len=128, granularity=32),
        seed=7,
    )
    print(f"{model.describe()}\n")

    print(f"{'mode':26s}{'accuracy':>10s}{'recall':>9s}{'precision':>11s}")
    for name, config in MODES.items():
        predictor = replay(trace, config)
        stats = predictor.stats
        print(f"{name:26s}{stats.accuracy:>10.3f}{stats.recall:>9.3f}"
              f"{stats.precision:>11.3f}")

    predictor = replay(trace, PredictorConfig())
    state_kb = predictor.state_table_bytes() / 1024
    corr_kb = predictor.correlation.table_bytes() / 1024
    dejavu = DejaVu(Machine(), model)
    mlp_mb = (dejavu.predictor_bytes_per_layer() * model.num_layers / 2**20)
    print(f"\nfootprints: state table {state_kb:.0f} KB (paper: 232 KB), "
          f"correlation table {corr_kb:.0f} KB")
    print(f"Deja Vu MLP predictors for the same model: {mlp_mb:.0f} MB "
          "(paper: ~2 GB, 10-25% of runtime)")


if __name__ == "__main__":
    main()
