"""Design-space exploration: size an NDP-DIMM machine for your workload.

Sweeps the two hardware knobs the paper studies — the number of NDP-DIMMs
(Fig. 14) and the GEMV-unit multiplier count (Fig. 16) — for a target
model and batch size, and reports the smallest configuration within 10 %
of the best observed throughput.

Run with::

    python examples/size_your_machine.py [model] [batch]
"""

import sys

from repro.api import (
    HermesSystem,
    Machine,
    TraceConfig,
    generate_trace,
    get_model,
)

DIMM_COUNTS = (2, 4, 8, 16)
MULTIPLIERS = (64, 128, 256, 512)


def throughput(machine: Machine, model, trace, batch: int) -> float | None:
    try:
        system = HermesSystem(machine, model)
    except ValueError:
        return None  # model does not fit this pool
    return system.run(trace, batch=batch).tokens_per_second


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "Falcon-40B"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    model = get_model(model_name)
    trace = generate_trace(
        model,
        TraceConfig(prompt_len=128, decode_len=64, granularity=64),
        seed=7,
    )
    print(f"{model.describe()}, batch {batch}\n")

    results: dict[tuple[int, int], float] = {}
    header = f"{'DIMMs':>6s}" + "".join(f"{m:>10d}" for m in MULTIPLIERS)
    print(header + "   (tokens/s by multipliers per GEMV unit)")
    for n_dimms in DIMM_COUNTS:
        row = f"{n_dimms:>6d}"
        for multipliers in MULTIPLIERS:
            machine = Machine().with_dimms(n_dimms) \
                               .with_multipliers(multipliers)
            rate = throughput(machine, model, trace, batch)
            if rate is None:
                row += f"{'N.P.':>10s}"
            else:
                results[(n_dimms, multipliers)] = rate
                row += f"{rate:>10.1f}"
        print(row)

    if not results:
        print("no feasible configuration")
        return
    best = max(results.values())
    # smallest machine within 10% of the best (cheapest adequate build)
    feasible = [(n * 1000 + m, n, m) for (n, m), r in results.items()
                if r >= 0.9 * best]
    _, n, m = min(feasible)
    print(f"\nbest throughput: {best:.1f} tokens/s")
    print(f"recommended build: {n} NDP-DIMMs, {m} multipliers/GEMV unit "
          f"({results[(n, m)]:.1f} tokens/s, within 10% of best)")


if __name__ == "__main__":
    main()
