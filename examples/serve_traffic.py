"""Serve open-loop traffic on a Hermes machine — the serving quickstart.

Generates a bursty request workload, serves it with continuous batching
under two policies, and prints the SLO metrics a production operator would
watch.  Runs on the tiny test model so it finishes in seconds:

    PYTHONPATH=src python examples/serve_traffic.py

Pass ``--trace-out FILE`` to record the ``hermes-union`` run's
telemetry: ``.json`` writes a Chrome/Perfetto trace (open in
chrome://tracing or ui.perfetto.dev), anything else a watchable metric
stream —

    PYTHONPATH=src python examples/serve_traffic.py --trace-out /tmp/run.jsonl
    PYTHONPATH=src python -m repro.experiments watch /tmp/run.jsonl --once
"""

import argparse

from repro.api import (
    LengthDistribution,
    ServingConfig,
    ServingSimulator,
    TelemetrySpec,
    WorkloadConfig,
    generate_workload,
    scenario_sinks,
)

parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
parser.add_argument("--trace-out", default=None, metavar="FILE",
                    help="write the hermes-union run's telemetry "
                         "(.json = Chrome trace, else metric stream)")
args = parser.parse_args()

# bursty traffic hot enough to saturate the machine: 2000 req/s
# mean with 4x spikes (tiny-test serves ~1000 req/s fully batched)
workload = generate_workload(
    WorkloadConfig(
        arrival="bursty",
        rate=2000.0,
        num_requests=120,
        burst_factor=4.0,
        burst_fraction=0.2,
        prompt_lens=LengthDistribution(kind="lognormal", mean=48, sigma=0.6,
                                       low=8, high=256),
        output_lens=LengthDistribution(kind="uniform", low=8, high=48),
    ),
    seed=42,
)
print(f"workload: {len(workload)} requests over "
      f"{workload[-1].arrival:.1f}s (bursty Poisson)")

for policy in ("fcfs-nobatch", "fcfs", "hermes-union"):
    simulator = ServingSimulator(
        "tiny-test",
        policy,
        ServingConfig(max_batch=8),
        granularity=4,
    )
    # trace the last (hermes-union) run when asked: the sink set turns
    # the --trace-out path into a Chrome-trace or metric-stream tracer
    sinks = None
    if args.trace_out and policy == "hermes-union":
        sinks = scenario_sinks(TelemetrySpec(), trace_out=args.trace_out,
                               source="examples/serve_traffic.py")
    report = simulator.run(workload, tracer=sinks.tracer if sinks else None)
    if sinks:
        for path in sinks.close():
            print(f"\ntelemetry written: {path} (watch it with "
                  f"`python -m repro.experiments watch {path} --once`)")
    print(f"\n--- policy: {policy} ---")
    print(f"  completed        {len(report.completed)}/{len(report.records)}")
    print(f"  throughput       {report.tokens_per_second:8.1f} tok/s "
          f"({report.requests_per_second:.1f} req/s)")
    print(f"  TTFT p50 / p99   {report.ttft_percentile(50) * 1e3:8.2f} / "
          f"{report.ttft_percentile(99) * 1e3:.2f} ms")
    print(f"  TBT  p50 / p99   {report.tbt_percentile(50) * 1e3:8.2f} / "
          f"{report.tbt_percentile(99) * 1e3:.2f} ms")
    print(f"  E2E  p50 / p99   {report.e2e_percentile(50) * 1e3:8.2f} / "
          f"{report.e2e_percentile(99) * 1e3:.2f} ms")
    print(f"  mean batch       {report.mean_batch_size:8.2f}")
    print(f"  mean queue depth {report.mean_queue_depth:8.2f}")
    print(f"  GPU / DIMM util  {report.gpu_utilization:8.1%} / "
          f"{report.dimm_utilization:.1%}")
