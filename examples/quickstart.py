"""Quickstart: deploy OPT-66B on a single RTX 4090 with 8 NDP-DIMMs.

Builds the paper's default machine (§V-A1), generates a calibrated
synthetic activation trace, runs the full Hermes system, and prints the
end-to-end generation speed with its latency breakdown — the single-model
version of Figure 9.

Run with::

    python examples/quickstart.py
"""

from repro.api import (
    HermesSystem,
    Machine,
    TraceConfig,
    generate_trace,
    get_model,
)


def main() -> None:
    model = get_model("OPT-66B")
    machine = Machine()  # RTX 4090 + 8x 32 GB NDP-DIMMs + PCIe 4.0

    print(model.describe())
    print(f"machine: {machine.gpu.name}, {machine.num_dimms} NDP-DIMMs "
          f"({machine.dimm_capacity_total / 2**30:.0f} GiB pool, "
          f"{machine.dimm_bandwidth_total / 1e9:.0f} GB/s internal)")

    trace = generate_trace(
        model,
        TraceConfig(prompt_len=128, decode_len=128, granularity=64),
        seed=7,
    )
    print(f"trace: {trace.n_tokens} tokens, "
          f"{trace.density():.1%} activation density")

    system = HermesSystem(machine, model)
    result = system.run(trace, batch=1)

    print(f"\nHermes on {model.name}: "
          f"{result.tokens_per_second:.2f} tokens/s end-to-end "
          f"({result.decode_tokens_per_second:.2f} decode-only; "
          "paper reports 20.37)")
    print("predictor accuracy: "
          f"{result.metadata['predictor_accuracy']:.1%} (paper: ~98%)")
    print("\nper-token latency breakdown (ms):")
    for key, seconds in sorted(
        result.breakdown.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {key:14s} {1e3 * seconds / result.n_decode_tokens:8.3f}")


if __name__ == "__main__":
    main()
